"""Run-to-run diffing: tolerance bands, floors, and regressions."""

import copy

import pytest

from repro.errors import MonitorError
from repro.monitor import diff_runs, render_diff


def report(**overrides):
    """A small exported-report payload in the dashboard shape."""
    data = {
        "dataset": {"layout": "multimap", "shape": [24, 12, 12]},
        "makespan_ms": 400.0,
        "throughput_qps": 25.0,
        "phase_ms": {"service": 300.0, "plan": 40.0},
        "monitor": {
            "summary": {
                "queries": 10,
                "latency_ms": {"p50": 30.0, "p99": 80.0},
            },
            "windows": [
                {"w": 0, "qps": 40.0, "p99_ms": 60.0},
                {"w": 1, "qps": 20.0, "p99_ms": 90.0},
            ],
            "alerts": [],
            "health": {"state": "healthy", "transitions": []},
        },
    }
    data.update(overrides)
    return data


def perturb(path, value):
    """A report with one dotted ``path`` replaced by ``value``."""
    data = report()
    node = data
    keys = path.split(".")
    for key in keys[:-1]:
        node = node[int(key)] if key.isdigit() else node[key]
    last = keys[-1]
    node[int(last) if last.isdigit() else last] = value
    return data


class TestCleanDiffs:
    def test_identical_runs_have_no_regressions(self):
        out = diff_runs(report(), copy.deepcopy(report()))
        assert out["regressions"] == []
        assert out["totals"]["makespan_ms"]["delta"] == 0.0
        assert out["windows"]["flagged"] == []

    def test_improvements_never_flag(self):
        faster = perturb("makespan_ms", 200.0)
        faster["throughput_qps"] = 50.0
        assert diff_runs(report(), faster)["regressions"] == []

    def test_within_tolerance_is_clean(self):
        out = diff_runs(report(), perturb("makespan_ms", 430.0),
                        tolerance=0.1)
        assert out["regressions"] == []
        assert out["totals"]["makespan_ms"]["delta"] == 30.0

    def test_floor_suppresses_tiny_absolute_deltas(self):
        # +0.5 ms on a 1 ms phase is +50% but under the 1 ms floor
        base = report()
        base["phase_ms"]["plan"] = 1.0
        cur = copy.deepcopy(base)
        cur["phase_ms"]["plan"] = 1.5
        assert diff_runs(base, cur)["regressions"] == []

    def test_monitorless_reports_still_diff(self):
        base = report()
        del base["monitor"]
        out = diff_runs(base, copy.deepcopy(base))
        assert out["regressions"] == []
        assert "quantiles" not in out


class TestRegressions:
    def test_makespan_regression_flags(self):
        out = diff_runs(report(), perturb("makespan_ms", 480.0))
        assert out["totals"]["makespan_ms"]["regressed"] is True
        assert any(r.startswith("makespan_ms") for r in
                   out["regressions"])

    def test_throughput_drop_flags(self):
        out = diff_runs(report(), perturb("throughput_qps", 15.0))
        assert any(r.startswith("throughput_qps") for r in
                   out["regressions"])

    def test_quantile_regression_flags(self):
        cur = report()
        cur["monitor"]["summary"]["latency_ms"]["p99"] = 200.0
        out = diff_runs(report(), cur)
        assert any("latency.p99" in r for r in out["regressions"])

    def test_window_p99_regression_names_the_window(self):
        cur = report()
        cur["monitor"]["windows"][1]["p99_ms"] = 300.0
        out = diff_runs(report(), cur)
        assert out["windows"]["flagged"] == [
            {"w": 1, "why": ["p99_ms: 90 -> 300 (+210)"]}]
        assert "window 1: p99_ms: 90 -> 300 (+210)" in \
            out["regressions"]

    def test_new_alerts_flag(self):
        cur = report()
        cur["monitor"]["alerts"] = [{"rule": "burn_rate"}] * 2
        out = diff_runs(report(), cur)
        assert any(r.startswith("alerts") for r in out["regressions"])

    def test_health_departure_from_healthy_flags(self):
        cur = report()
        cur["monitor"]["health"]["state"] = "degraded"
        out = diff_runs(report(), cur)
        assert "health: healthy -> degraded" in out["regressions"]

    def test_tighter_tolerance_catches_more(self):
        cur = perturb("makespan_ms", 430.0)
        assert diff_runs(report(), cur,
                         tolerance=0.1)["regressions"] == []
        assert diff_runs(report(), cur,
                         tolerance=0.05)["regressions"]


class TestValidation:
    def test_non_dict_inputs_rejected(self):
        with pytest.raises(MonitorError, match="report dicts"):
            diff_runs([], report())

    def test_negative_tolerance_rejected(self):
        with pytest.raises(MonitorError, match="tolerance"):
            diff_runs(report(), report(), tolerance=-0.1)


class TestRender:
    def test_clean_diff_renders(self):
        text = render_diff(diff_runs(report(), copy.deepcopy(report())))
        assert "no regressions beyond tolerance 0.1" in text
        assert "REGRESSED" not in text
        assert "health: healthy -> healthy" in text

    def test_regressed_diff_renders(self):
        out = diff_runs(report(), perturb("makespan_ms", 480.0))
        text = render_diff(out)
        assert "REGRESSED" in text
        assert "1 regression(s) beyond tolerance 0.1" in text
