"""Continuous monitoring (repro.monitor) test suite."""
