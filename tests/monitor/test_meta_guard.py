"""Default bench runs never leak observability keys into their JSON.

The regression guard for the opt-in contract: at default settings
every subcommand's report must contain NO ``obs``/``monitor``/
``explain``/``attribution`` key anywhere (``trace`` attaches telemetry
by design, so it is asserted monitor-free only; ``explain`` IS the
diagnosis subcommand, so it is asserted obs/monitor-free only).
"""

import json

import pytest

from repro.bench.cli import main

QUICK = ["--shape", "16,8,8", "--layouts", "multimap",
         "--drive", "minidrive", "--quiet"]


def gated_keys(obj, names=("obs", "monitor", "explain",
                           "attribution")) -> set:
    """Every gated key present anywhere in a JSON payload."""
    found = set()
    if isinstance(obj, dict):
        for key, value in obj.items():
            if key in names:
                found.add(key)
            found |= gated_keys(value, names)
    elif isinstance(obj, list):
        for value in obj:
            found |= gated_keys(value, names)
    return found


def run_json(tmp_path, argv):
    dest = tmp_path / "out.json"
    assert main(argv + ["--json", str(dest)]) == 0
    return json.loads(dest.read_text())


CASES = {
    "traffic": ["traffic"] + QUICK + ["--clients", "2",
                                      "--queries", "2"],
    "cache": ["cache"] + QUICK + ["--capacities", "0,256",
                                  "--beams", "2", "--repeats", "1"],
    "scale": ["scale"] + QUICK + ["--shards", "1,2", "--beams", "2"],
    "avail": ["avail"] + QUICK + ["--ks", "1,2", "--disks", "2",
                                  "--beams", "2"],
    "ingest": ["ingest"] + QUICK + ["--loaders", "fixed",
                                    "--points", "128"],
    "perf": ["perf"] + QUICK + ["--beams", "2", "--ranges", "1",
                                "--full-ranges", "0", "--repeats", "1",
                                "--ref-plans", "1"],
}


class TestDefaultRunsAreUnobserved:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_no_gated_keys(self, tmp_path, name):
        data = run_json(tmp_path, CASES[name])
        assert gated_keys(data) == set(), (
            f"{name} leaked gated meta at default settings"
        )

    def test_trace_attaches_obs_but_never_monitor(self, tmp_path):
        data = run_json(tmp_path, [
            "trace", "--shape", "16,8,8", "--drive", "minidrive",
            "--clients", "2", "--queries", "2", "--quiet",
        ])
        assert "obs" in data  # telemetry is the subcommand's point
        assert gated_keys(data, names=("monitor",)) == set()

    def test_dashboard_attaches_monitor(self, tmp_path):
        data = run_json(tmp_path, [
            "dashboard", "--shape", "16,8,8", "--drive", "minidrive",
            "--clients", "2", "--queries", "2", "--quiet",
        ])
        assert "monitor" in data

    def test_explain_never_carries_obs_or_monitor(self, tmp_path):
        """EXPLAIN/ANALYZE runs under a *private* trace: the exported
        payload must not leak the telemetry tree or monitor meta."""
        data = run_json(tmp_path, [
            "explain", "--shape", "16,8,8", "--drive", "minidrive",
            "--analyze", "--quiet",
        ])
        assert "layouts" in data
        assert gated_keys(data, names=("obs", "monitor")) == set()

    def test_diff_without_attribute_stays_clean(self, tmp_path):
        src = tmp_path / "run.json"
        argv = ["trace", "--shape", "16,8,8", "--drive", "minidrive",
                "--clients", "2", "--queries", "2", "--quiet",
                "--json", str(src)]
        assert main(argv) == 0
        dest = tmp_path / "diff.json"
        assert main(["diff", str(src), str(src), "--quiet",
                     "--json", str(dest)]) == 0
        data = json.loads(dest.read_text())
        assert gated_keys(data, names=("attribution", "monitor",
                                       "explain")) == set()
