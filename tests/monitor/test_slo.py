"""The SLO rule registry and the four builtin rules."""

import pytest

from repro.errors import MonitorError, RegistryError
from repro.monitor import (
    RULES,
    AlertEvent,
    BurnRateRule,
    DegradedCapacityRule,
    LatencyThresholdRule,
    QueueSaturationRule,
    TimeSeries,
    resolve_rules,
    rule_names,
)
from repro.obs import Span


def series_with(durations, window_ms=50.0):
    """One completed query per (t0, dur) pair, serviced on disk 0."""
    ts = TimeSeries(window_ms)
    for t0, dur in durations:
        svc = Span("disk 0", "service", t0, dur,
                   attrs={"disk": 0, "blocks": 4})
        ts.ingest(Span("q", "query", t0, dur, children=(svc,)))
    return ts


class TestRegistry:
    def test_builtins_registered(self):
        assert rule_names() == (
            "burn_rate", "degraded_capacity", "latency_threshold",
            "queue_saturation",
        )

    def test_docs_are_discoverable(self):
        cls = RULES.get("burn_rate")
        assert cls.name == "burn_rate"
        assert cls.__doc__.startswith("Alert when")

    def test_unknown_rule_names_valid_ones(self):
        with pytest.raises(RegistryError, match="burn_rate"):
            RULES.get("latency_threshol")


class TestResolveRules:
    def test_none_gives_every_builtin_at_defaults(self):
        rules = resolve_rules(None)
        assert [r.name for r in rules] == list(rule_names())

    def test_mapping_passes_params(self):
        rules = resolve_rules({"latency_threshold":
                               {"threshold_ms": 10.0}})
        assert len(rules) == 1
        assert rules[0].threshold_ms == 10.0

    def test_mapping_none_params_mean_defaults(self):
        (rule,) = resolve_rules({"burn_rate": None})
        assert rule.windows == 4

    def test_iterable_of_names(self):
        rules = resolve_rules(["degraded_capacity", "burn_rate"])
        assert [r.name for r in rules] == ["degraded_capacity",
                                           "burn_rate"]

    def test_iterable_of_instances(self):
        inst = LatencyThresholdRule(threshold_ms=1.0)
        assert resolve_rules([inst]) == [inst]

    def test_rejects_junk(self):
        with pytest.raises(MonitorError, match="rules must be"):
            resolve_rules([42])

    def test_describe_is_json_friendly(self):
        desc = BurnRateRule(windows=2).describe()
        assert desc["rule"] == "burn_rate"
        assert desc["params"]["windows"] == 2


class TestLatencyThreshold:
    def test_fires_per_offending_window(self):
        ts = series_with([(0.0, 5.0), (60.0, 400.0)])
        alerts = LatencyThresholdRule(threshold_ms=100.0).evaluate(ts)
        assert len(alerts) == 1
        (a,) = alerts
        # the 400 ms query completes at 460 -> window 9, stamped at
        # the window's end
        assert a.window == 9
        assert a.t_ms == pytest.approx(500.0)
        assert a.value > 100.0
        assert "p99" in a.detail

    def test_quiet_series_is_silent(self):
        ts = series_with([(0.0, 5.0), (60.0, 8.0)])
        assert LatencyThresholdRule(threshold_ms=100.0).evaluate(ts) == []


class TestBurnRate:
    def test_fires_when_budget_burns(self):
        # every query blows a 10 ms objective: slow fraction 1.0
        # against a 0.25 budget = 4x burn
        ts = series_with([(0.0, 40.0), (10.0, 45.0), (60.0, 40.0)])
        alerts = BurnRateRule(objective_ms=10.0, budget=0.25,
                              windows=2, factor=2.0).evaluate(ts)
        assert alerts
        assert all(a.value >= 2.0 for a in alerts)

    def test_within_budget_is_silent(self):
        ts = series_with([(0.0, 5.0), (10.0, 6.0)])
        assert BurnRateRule(objective_ms=100.0).evaluate(ts) == []

    def test_validation(self):
        with pytest.raises(MonitorError, match="budget"):
            BurnRateRule(budget=0.0)
        with pytest.raises(MonitorError, match="window"):
            BurnRateRule(windows=0)


class TestQueueSaturation:
    def test_fires_on_pegged_drive(self):
        ts = series_with([(0.0, 50.0)])
        alerts = QueueSaturationRule(utilization=0.9).evaluate(ts)
        assert len(alerts) == 1
        assert alerts[0].detail == "disk 0 at 100.0% busy"

    def test_idle_drive_is_silent(self):
        ts = series_with([(0.0, 10.0)])
        assert QueueSaturationRule(utilization=0.9).evaluate(ts) == []

    def test_validation(self):
        with pytest.raises(MonitorError, match="utilization"):
            QueueSaturationRule(utilization=1.5)


class TestDegradedCapacity:
    def test_fires_while_degraded(self):
        ts = series_with([(0.0, 120.0)])
        ts.record_disk_event(60.0, "kill", 0, 1, 2)
        alerts = DegradedCapacityRule().evaluate(ts)
        assert [a.window for a in alerts] == [1, 2]
        assert all(a.value == 0.5 for a in alerts)

    def test_full_capacity_is_silent(self):
        ts = series_with([(0.0, 120.0)])
        assert DegradedCapacityRule().evaluate(ts) == []


class TestAlertEvent:
    def test_to_dict_rounds_and_orders(self):
        a = AlertEvent(t_ms=50.00004, rule="r", severity="warn",
                       window=0, value=0.123456, threshold=1.0,
                       detail="d")
        d = a.to_dict()
        assert d["t_ms"] == 50.0
        assert d["value"] == 0.1235
        assert list(d) == ["t_ms", "rule", "severity", "window",
                           "value", "threshold", "detail"]
