"""The health state machine over synthetic event timelines."""

import pytest

from repro.errors import MonitorError
from repro.monitor import (
    HEALTH_STATES,
    AlertEvent,
    HealthTracker,
    TimeSeries,
)
from repro.obs import Span


def series(n_windows, window_ms=50.0):
    """A series with activity through ``n_windows`` windows."""
    ts = TimeSeries(window_ms)
    dur = n_windows * window_ms
    svc = Span("disk 0", "service", 0.0, 1.0, attrs={"disk": 0})
    ts.ingest(Span("q", "query", 0.0, dur - 1e-9, children=(svc,)))
    return ts


def alert(rule, window, window_ms=50.0, severity="warn"):
    return AlertEvent(t_ms=(window + 1) * window_ms, rule=rule,
                      severity=severity, window=window, value=1.0,
                      threshold=1.0, detail=rule)


class TestValidation:
    def test_states_are_the_documented_four(self):
        assert HEALTH_STATES == (
            "healthy", "degraded", "saturated", "recovering",
        )

    def test_recover_windows_must_be_positive(self):
        with pytest.raises(MonitorError, match="recover_windows"):
            HealthTracker(0)

    def test_describe(self):
        assert HealthTracker(3).describe() == {"recover_windows": 3}


class TestTransitions:
    def test_quiet_run_stays_healthy(self):
        out = HealthTracker().evaluate(series(4), [])
        assert out == {"state": "healthy", "transitions": []}

    def test_kill_degrades(self):
        ts = series(4)
        ts.record_disk_event(60.0, "kill", 0, 1, 2)
        out = HealthTracker().evaluate(ts, [])
        assert out["state"] == "degraded"
        (t,) = out["transitions"]
        assert (t["t_ms"], t["from"], t["to"]) == (
            60.0, "healthy", "degraded")
        assert "disk 0 failed" in t["reason"]

    def test_load_alert_while_degraded_saturates(self):
        ts = series(6)
        ts.record_disk_event(60.0, "kill", 0, 1, 2)
        alerts = [alert("queue_saturation", 2)]
        out = HealthTracker().evaluate(ts, alerts)
        assert out["state"] == "saturated"
        assert [t["to"] for t in out["transitions"]] == [
            "degraded", "saturated"]

    def test_load_alert_while_healthy_is_ignored(self):
        ts = series(4)
        out = HealthTracker().evaluate(ts, [alert("burn_rate", 1)])
        assert out == {"state": "healthy", "transitions": []}

    def test_revive_starts_probation_then_heals(self):
        ts = series(8)
        ts.record_disk_event(60.0, "kill", 0, 1, 2)
        ts.record_disk_event(160.0, "revive", 0, 2, 2)
        out = HealthTracker(recover_windows=2).evaluate(ts, [])
        assert [t["to"] for t in out["transitions"]] == [
            "degraded", "recovering", "healthy"]
        # revive at 160 -> window 3's minimum is still degraded, so
        # windows 4 and 5 are the two clean ones: healed at 300
        assert out["transitions"][-1]["t_ms"] == pytest.approx(300.0)
        assert out["state"] == "healthy"

    def test_alerts_during_probation_delay_healing(self):
        ts = series(8)
        ts.record_disk_event(60.0, "kill", 0, 1, 2)
        ts.record_disk_event(160.0, "revive", 0, 2, 2)
        alerts = [alert("latency_threshold", 4)]
        out = HealthTracker(recover_windows=2).evaluate(ts, alerts)
        # the window-4 alert resets the clean streak: healed at 350
        assert out["state"] == "healthy"
        assert out["transitions"][-1]["t_ms"] == pytest.approx(350.0)

    def test_short_run_ends_recovering(self):
        ts = series(4)
        ts.record_disk_event(60.0, "kill", 0, 1, 2)
        ts.record_disk_event(160.0, "revive", 0, 2, 2)
        out = HealthTracker(recover_windows=4).evaluate(ts, [])
        assert out["state"] == "recovering"
