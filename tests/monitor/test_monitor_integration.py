"""The monitor wired through the dataset façade and the engines.

Covers the façade surface (``with_telemetry(monitor=...)`` /
``with_monitor``), the gated ``meta["monitor"]`` block, determinism
(same seed + workload ⇒ byte-identical payloads), and the acceptance
storm: a kill-one-disk run fires a degraded-capacity alert and walks
healthy → degraded → recovering.
"""

import json

import pytest

from repro.errors import DatasetError, MonitorError, ObsError
from repro.monitor import Monitor
from repro.obs import Telemetry
from repro.traffic import PoissonArrivals

MONITOR_KEYS = {
    "window_ms", "n_windows", "windows", "summary", "rules",
    "alerts", "health", "events",
}


def storm(make_dataset, *, monitor=True, seed=42, rules=None):
    """One kill-and-revive storm on a replicated dataset."""
    ds = make_dataset(seed=seed).with_shards(2).with_replication(2)
    opts = {"window_ms": 50.0}
    if rules is not None:
        opts["rules"] = rules
    if monitor:
        ds.with_monitor(**opts)
    report = (
        ds.traffic()
        .clients(2, queries=5, arrival=PoissonArrivals(rate_qps=10.0))
        .kill(60.0, 0, revive_at_ms=200.0)
        .run()
    )
    return ds, report


class TestFacade:
    def test_with_monitor_attaches(self, make_dataset):
        ds = make_dataset().with_monitor(window_ms=25.0)
        assert isinstance(ds.monitor, Monitor)
        assert ds.monitor.window_ms == 25.0
        assert ds.telemetry.monitor is ds.monitor
        # default trace + metrics ride along
        assert ds.telemetry.tracer is not None
        assert ds.telemetry.metrics is not None

    def test_with_telemetry_monitor_dict(self, make_dataset):
        ds = make_dataset().with_telemetry(monitor={"window_ms": 10.0})
        assert ds.monitor.window_ms == 10.0
        assert ds.describe()["obs"]["monitor"] == {"window_ms": 10.0}

    def test_with_telemetry_monitor_true(self, make_dataset):
        ds = make_dataset().with_telemetry(monitor=True)
        assert ds.monitor.window_ms == 50.0
        assert ds.describe()["obs"]["monitor"] is True

    def test_monitor_only_telemetry(self, make_dataset):
        ds = make_dataset().with_telemetry(
            trace=False, metrics=False, monitor=True
        )
        assert ds.telemetry.tracer is None
        assert ds.telemetry.metrics is None
        assert ds.monitor is not None

    def test_instance_rejected(self, make_dataset):
        with pytest.raises(DatasetError, match="options dict"):
            make_dataset().with_telemetry(monitor=Monitor())
        with pytest.raises(DatasetError, match="monitor must be"):
            make_dataset().with_monitor(monitor=Monitor())

    def test_with_monitor_false_removes_just_the_monitor(
            self, make_dataset):
        ds = make_dataset().with_monitor(window_ms=25.0)
        ds.with_monitor(False)
        assert ds.monitor is None
        assert ds.telemetry is not None  # trace + metrics remain
        assert "monitor" not in ds.describe()["obs"]

    def test_with_monitor_false_on_monitor_only_detaches(
            self, make_dataset):
        ds = make_dataset().with_telemetry(
            trace=False, metrics=False, monitor=True
        )
        ds.with_monitor(False)
        assert ds.telemetry is None
        assert "obs" not in ds.describe()

    def test_with_monitor_false_rejects_options(self, make_dataset):
        with pytest.raises(DatasetError, match="make no sense"):
            make_dataset().with_monitor(False, window_ms=10.0)

    def test_with_monitor_preserves_exporter_spec(self, make_dataset):
        ds = make_dataset().with_telemetry(exporter="jsonl")
        ds.with_monitor(window_ms=25.0)
        assert ds.telemetry.exporter == "jsonl"
        assert ds.monitor.window_ms == 25.0

    def test_telemetry_requires_something(self):
        with pytest.raises(ObsError, match="at least one"):
            Telemetry(trace=False, metrics=False)

    def test_monitor_window_validation_surfaces(self, make_dataset):
        with pytest.raises(MonitorError, match="window_ms"):
            make_dataset().with_monitor(window_ms=0.0)

    def test_survives_shard_and_replication_rebuilds(
            self, make_dataset):
        ds = make_dataset().with_monitor()
        mon = ds.monitor
        ds = ds.with_shards(2).with_replication(2)
        assert ds.monitor is mon

    def test_with_layout_clone_reinstantiates(self, make_dataset):
        ds = make_dataset().with_monitor(window_ms=25.0)
        clone = ds.with_layout("zorder")
        assert clone.monitor is not None
        assert clone.monitor is not ds.monitor
        assert clone.monitor.window_ms == 25.0


class TestBatchMeta:
    def test_meta_monitor_schema(self, make_dataset):
        ds = make_dataset().with_monitor(window_ms=25.0)
        report = ds.random_beams(axis=1, n=4).run()
        mon = report.meta["monitor"]
        assert set(mon) == MONITOR_KEYS
        assert mon["window_ms"] == 25.0
        assert mon["summary"]["queries"] == 4
        assert sum(w["queries"] for w in mon["windows"]) == 4
        assert mon["health"] == {"state": "healthy", "transitions": []}
        assert [r["rule"] for r in mon["rules"]] == [
            "burn_rate", "degraded_capacity", "latency_threshold",
            "queue_saturation",
        ]

    def test_monitor_only_meta_skips_empty_obs(self, make_dataset):
        ds = make_dataset().with_telemetry(
            trace=False, metrics=False, monitor=True
        )
        report = ds.random_beams(axis=1, n=3).run()
        assert "obs" not in report.meta
        assert report.meta["monitor"]["summary"]["queries"] == 3

    def test_batch_payload_independent_of_tracing(self, make_dataset):
        """The monitor's own clock makes batch windows identical
        whether or not the tracer (whose clock batch roots ride) is
        attached."""
        def payload(**tele):
            ds = make_dataset().with_telemetry(monitor=True, **tele)
            ds.random_beams(axis=1, n=4).run()
            return json.dumps(ds.monitor.describe(), sort_keys=True)

        assert payload(trace=True, metrics=True) == payload(
            trace=False, metrics=False)

    def test_reset_clears_recordings(self, make_dataset):
        ds = make_dataset().with_monitor()
        ds.random_beams(axis=1, n=3).run()
        assert ds.monitor.series.n_windows > 0
        ds.telemetry.reset()
        assert ds.monitor.series.n_windows == 0
        assert ds.monitor.clock_ms == 0.0


class TestDeterminism:
    def test_same_seed_is_byte_identical(self, make_dataset):
        payloads = []
        for _ in range(2):
            ds, report = storm(make_dataset)
            payloads.append(json.dumps(
                report.meta["monitor"], sort_keys=True))
        assert payloads[0] == payloads[1]

    def test_different_seed_differs(self, make_dataset):
        a = json.dumps(storm(make_dataset, seed=42)[1].meta["monitor"],
                       sort_keys=True)
        b = json.dumps(storm(make_dataset, seed=7)[1].meta["monitor"],
                       sort_keys=True)
        assert a != b


class TestAcceptanceStorm:
    def test_kill_fires_degraded_capacity_and_walks_states(
            self, make_dataset):
        ds, report = storm(make_dataset,
                           rules={"degraded_capacity": None})
        mon = report.meta["monitor"]
        rules = {a["rule"] for a in mon["alerts"]}
        assert rules == {"degraded_capacity"}
        walk = [mon["health"]["transitions"][0]["from"]] + [
            t["to"] for t in mon["health"]["transitions"]]
        assert walk == ["healthy", "degraded", "recovering", "healthy"]
        assert [e["action"] for e in mon["events"]] == [
            "kill", "revive"]
        # the degraded stretch is exactly the sub-capacity windows
        degraded = [w["w"] for w in mon["windows"]
                    if w["capacity"] < 1.0]
        assert degraded == [a["window"] for a in mon["alerts"]]

    def test_default_rules_also_catch_the_kill(self, make_dataset):
        ds, report = storm(make_dataset)
        mon = report.meta["monitor"]
        rules = {a["rule"] for a in mon["alerts"]}
        assert "degraded_capacity" in rules
        transitions = [t["to"] for t in mon["health"]["transitions"]]
        assert transitions[0] == "degraded"
        assert "recovering" in transitions

    def test_windows_reconcile_with_report(self, make_dataset):
        ds, report = storm(make_dataset)
        mon = report.meta["monitor"]
        assert mon["summary"]["queries"] == 10
        assert sum(w["queries"] for w in mon["windows"]) == 10
        # the axis spans the makespan
        assert mon["n_windows"] == int(report.makespan_ms / 50.0) + 1
        # utilisation never exceeds 1 and capacity dips exactly while
        # a member disk is down
        for w in mon["windows"]:
            assert all(0.0 <= u <= 1.0 for u in w["util"].values())
            assert 0.0 <= w["cache_hit_ratio"] <= 1.0
