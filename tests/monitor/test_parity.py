"""Zero-impact monitoring: an attached Monitor never changes results.

The monitor analogue of ``tests/obs/test_parity.py``: batch Report
JSON, traffic JSON (including a failover storm), and ingest JSON are
byte-identical with and without an attached monitor, modulo the gated
``meta["obs"]``/``meta["monitor"]`` keys, which only ever *add*.
"""

import json


def strip_monitor(payload: str) -> dict:
    """Drop the gated keys an attached Telemetry + Monitor *add*."""
    data = json.loads(payload)
    meta = data.get("meta", {})
    meta.pop("obs", None)
    meta.pop("monitor", None)
    meta.get("dataset", {}).pop("obs", None)
    return data


class TestBitIdentity:
    def test_batch_report_identical(self, make_dataset):
        plain = make_dataset().random_beams(axis=1, n=4).run()
        monitored = (
            make_dataset().with_monitor()
            .random_beams(axis=1, n=4).run()
        )
        assert strip_monitor(monitored.to_json()) == json.loads(
            plain.to_json())

    def test_monitor_only_telemetry_identical(self, make_dataset):
        plain = make_dataset().random_beams(axis=2, n=3).run()
        monitored = (
            make_dataset()
            .with_telemetry(trace=False, metrics=False, monitor=True)
            .random_beams(axis=2, n=3).run()
        )
        assert strip_monitor(monitored.to_json()) == json.loads(
            plain.to_json())

    def test_traffic_json_identical(self, make_dataset):
        def run(attach):
            ds = make_dataset()
            if attach:
                ds.with_monitor()
            return ds.traffic().clients(3, queries=4).run().to_json()

        assert strip_monitor(run(True)) == json.loads(run(False))

    def test_traffic_failover_identical(self, make_dataset):
        def run(attach):
            ds = make_dataset().with_shards(2).with_replication(2)
            if attach:
                ds.with_monitor()
            return (
                ds.traffic()
                .clients(2, queries=4)
                .kill(5.0, 0, revive_at_ms=60.0)
                .run()
                .to_json()
            )

        assert strip_monitor(run(True)) == json.loads(run(False))

    def test_ingest_report_identical(self, make_dataset):
        def run(attach):
            ds = make_dataset(layout="zorder", shape=(16, 8, 8), seed=7)
            if attach:
                ds.with_monitor()
            return ds.ingest(
                stream="clustered", n_points=256, flush_points=64,
                loader_opts={"points_per_cell": 1}, reorganize=True,
            ).run().to_json()

        assert run(True) == run(False)

    def test_monitor_rides_existing_telemetry_unchanged(
            self, make_dataset):
        """Adding a monitor to a traced run must not perturb the
        trace: the span recordings are identical either way."""
        def phase_totals(monitor):
            ds = make_dataset().with_telemetry(monitor=monitor)
            ds.traffic().clients(2, queries=4).run()
            return ds.telemetry.tracer.phase_ms()

        assert phase_totals(True) == phase_totals(None)
