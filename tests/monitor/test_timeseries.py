"""The tumbling-window collector as a pure data structure."""

import pytest

from repro.errors import MonitorError
from repro.monitor import TimeSeries
from repro.obs import Span


def query(t0, dur, *children, name="q"):
    return Span(name, "query", t0, dur, children=tuple(children))


def service(t0, dur, disk, blocks=4):
    return Span(f"disk {disk}", "service", t0, dur,
                attrs={"disk": disk, "blocks": blocks})


def flush(t0, dur, disk, blocks=4):
    return Span(f"disk {disk}", "flush", t0, dur,
                attrs={"disk": disk, "blocks": blocks})


def cache(t0, dur, disk, hits=8):
    return Span(f"cache d{disk}", "cache", t0, dur,
                attrs={"disk": disk, "hits": hits})


class TestValidation:
    def test_window_must_be_positive(self):
        for bad in (0.0, -5.0):
            with pytest.raises(MonitorError, match="window_ms"):
                TimeSeries(bad)

    def test_bad_disk_event_action(self):
        ts = TimeSeries(50.0)
        with pytest.raises(MonitorError, match="kill"):
            ts.record_disk_event(10.0, "explode", 0, 1, 2)


class TestAttribution:
    def test_query_counted_in_completion_window(self):
        ts = TimeSeries(50.0)
        # starts in window 0, completes in window 1
        ts.ingest(query(40.0, 30.0, service(40.0, 30.0, 0)))
        rows = ts.rows()
        assert [r["queries"] for r in rows] == [0, 1]
        assert rows[1]["p50_ms"] > 0.0

    def test_busy_spreads_over_windows(self):
        ts = TimeSeries(50.0)
        # 100 ms of disk-0 service spanning windows 0 and 1 evenly
        ts.ingest(query(25.0, 100.0, service(25.0, 100.0, 0)))
        rows = ts.rows()
        assert rows[0]["util"]["0"] == pytest.approx(0.5)
        assert rows[1]["util"]["0"] == pytest.approx(1.0)
        assert rows[2]["util"]["0"] == pytest.approx(0.5)

    def test_inflight_is_time_averaged(self):
        ts = TimeSeries(50.0)
        ts.ingest(query(0.0, 25.0, service(0.0, 25.0, 0)))
        ts.ingest(query(0.0, 50.0, service(0.0, 50.0, 0)))
        assert ts.rows()[0]["inflight"] == pytest.approx(1.5)

    def test_queue_depth_covers_arrival_to_last_slice(self):
        ts = TimeSeries(50.0)
        # arrives at 0 but disk 0 only services [40, 50): the queue
        # interval is the whole [0, 50) wait+service span
        ts.ingest(query(0.0, 50.0, service(40.0, 10.0, 0)))
        row = ts.rows()[0]
        assert row["queue"]["0"] == pytest.approx(1.0)
        assert row["util"]["0"] == pytest.approx(0.2)

    def test_cache_hits_vs_disk_blocks(self):
        ts = TimeSeries(50.0)
        ts.ingest(query(0.0, 10.0, cache(0.0, 1.0, 0, hits=6),
                        service(1.0, 9.0, 0, blocks=2)))
        assert ts.rows()[0]["cache_hit_ratio"] == pytest.approx(0.75)

    def test_flush_blocks_feed_ingest_goodput(self):
        ts = TimeSeries(50.0)
        ts.ingest(query(0.0, 10.0, flush(0.0, 10.0, 1, blocks=100)))
        row = ts.rows()[0]
        assert row["ingest_blocks"] == 100
        # 100 blocks * 512 B in a 50 ms window
        assert row["ingest_mb_s"] == pytest.approx(
            100 * 512 / 0.05 / 1e6, abs=1e-4
        )
        # flushes are drive work too
        assert row["util"]["1"] == pytest.approx(0.2)

    def test_shift_translates_batch_recordings(self):
        ts = TimeSeries(50.0)
        # a root recorded at t0=0 on the batch clock, shifted to 60
        ts.ingest(query(0.0, 10.0, service(0.0, 10.0, 0)), shift=60.0)
        rows = ts.rows()
        assert [r["queries"] for r in rows] == [0, 1]

    def test_window_boundary_is_half_open(self):
        ts = TimeSeries(50.0)
        # ends exactly at 50: completion window is 1 (index(50) == 1)
        # but the busy interval [0, 50) must not touch window 1
        ts.ingest(query(0.0, 50.0, service(0.0, 50.0, 0)))
        rows = ts.rows()
        assert rows[1]["queries"] == 1
        assert "0" not in rows[1]["util"]

    def test_reorg_fraction_is_gated(self):
        ts = TimeSeries(50.0)
        ts.ingest(query(0.0, 10.0, service(0.0, 10.0, 0)))
        assert "reorg_frac" not in ts.rows()[0]
        ts.ingest(Span("reorganize", "reorg", 10.0, 25.0))
        row = ts.rows()[0]
        assert row["reorg_frac"] == pytest.approx(0.5)
        assert ts.reorgs == [(10.0, 35.0)]


class TestCapacity:
    def test_default_is_full_capacity(self):
        ts = TimeSeries(50.0)
        ts.ingest(query(0.0, 120.0, service(0.0, 120.0, 0)))
        assert ts.capacity_series() == [1.0, 1.0, 1.0]

    def test_kill_and_revive_step_function(self):
        ts = TimeSeries(50.0)
        ts.ingest(query(0.0, 250.0, service(0.0, 250.0, 0)))
        ts.record_disk_event(60.0, "kill", 0, 3, 4)
        ts.record_disk_event(160.0, "revive", 0, 4, 4)
        # window 1 dips when the kill lands; window 3 sees the revive
        # but its minimum is still the degraded level
        assert ts.capacity_series() == [1.0, 0.75, 0.75, 0.75, 1.0, 1.0]

    def test_event_past_last_query_materialises_window(self):
        ts = TimeSeries(50.0)
        ts.record_disk_event(220.0, "kill", 1, 1, 2)
        assert ts.n_windows == 5
        assert ts.capacity_series()[4] == 0.5


class TestReads:
    def test_rows_are_contiguous_and_stable(self):
        ts = TimeSeries(50.0)
        ts.ingest(query(120.0, 10.0, service(120.0, 10.0, 0)))
        rows = ts.rows()
        assert [r["w"] for r in rows] == [0, 1, 2]
        assert rows[0]["t0_ms"] == 0.0
        # empty windows keep the full key set
        assert set(rows[0]) == set(rows[2])

    def test_merged_latency_pools_all_windows(self):
        ts = TimeSeries(50.0)
        for t0, dur in ((0.0, 10.0), (60.0, 30.0), (120.0, 20.0)):
            ts.ingest(query(t0, dur, service(t0, dur, 0)))
        merged = ts.merged_latency()
        assert merged.count == 3
        assert merged.sum == pytest.approx(60.0)

    def test_reset_clears_everything(self):
        ts = TimeSeries(50.0)
        ts.ingest(query(0.0, 10.0, service(0.0, 10.0, 0)))
        ts.record_disk_event(5.0, "kill", 0, 1, 2)
        ts.reset()
        assert ts.n_windows == 0
        assert ts.rows() == []
        assert ts.capacity_events == []
