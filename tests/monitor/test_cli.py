"""The ``dashboard`` and ``diff`` bench subcommands."""

import json

import pytest

from repro.bench.cli import main

DASH_QUICK = ["dashboard", "--shape", "16,8,8", "--drive", "minidrive",
              "--clients", "2", "--queries", "3", "--seed", "11"]
STORM = ["dashboard", "--shape", "24,12,12", "--drive", "minidrive",
         "--clients", "2", "--queries", "4", "--shards", "2", "--k", "2",
         "--kill-at", "40", "--revive-at", "160", "--seed", "11"]


def export(tmp_path, name, argv):
    dest = tmp_path / name
    assert main(argv + ["--json", str(dest), "--quiet"]) == 0
    return dest


class TestDashboard:
    def test_renders_sparklines_and_health(self, capsys):
        assert main(DASH_QUICK) == 0
        out = capsys.readouterr().out
        assert "qps" in out
        assert "p99 ms" in out
        assert "health: healthy" in out

    def test_json_export_carries_monitor(self, tmp_path):
        data = json.loads(export(
            tmp_path, "run.json", DASH_QUICK).read_text())
        assert data["monitor"]["n_windows"] >= 1
        assert data["throughput_qps"] > 0.0

    def test_storm_renders_alerts_and_transitions(
            self, tmp_path, capsys):
        assert main(STORM) == 0
        out = capsys.readouterr().out
        assert "degraded_capacity" in out
        assert "healthy -> degraded" in out

    def test_rejects_bad_arrival(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(DASH_QUICK + ["--arrival", "chaotic"])
        assert exc.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("burn_rate", "degraded_capacity",
                     "latency_threshold", "queue_saturation"):
            assert rule in out


class TestDiff:
    def test_same_seed_runs_diff_clean(self, tmp_path, capsys):
        a = export(tmp_path, "a.json", DASH_QUICK)
        b = export(tmp_path, "b.json", DASH_QUICK)
        assert a.read_bytes() == b.read_bytes()
        assert main(["diff", str(a), str(b)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        a = export(tmp_path, "a.json", DASH_QUICK)
        data = json.loads(a.read_text())
        data["makespan_ms"] *= 2.0
        b = tmp_path / "b.json"
        b.write_text(json.dumps(data))
        assert main(["diff", str(a), str(b)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_tolerance_flag_loosens_the_band(self, tmp_path):
        a = export(tmp_path, "a.json", DASH_QUICK)
        data = json.loads(a.read_text())
        data["makespan_ms"] *= 1.2
        b = tmp_path / "b.json"
        b.write_text(json.dumps(data))
        assert main(["diff", str(a), str(b)]) == 1
        assert main(["diff", str(a), str(b),
                     "--tolerance", "0.5"]) == 0

    def test_json_export(self, tmp_path):
        a = export(tmp_path, "a.json", DASH_QUICK)
        dest = tmp_path / "diff.json"
        assert main(["diff", str(a), str(a), "--json", str(dest),
                     "--quiet"]) == 0
        assert json.loads(dest.read_text())["regressions"] == []
