"""The façade: ``with_ingest`` specs, ``Dataset.ingest()`` runs."""

import json

import numpy as np
import pytest

from repro.api import Dataset
from repro.api.ingest import IngestRun
from repro.errors import DatasetError, IngestError, RegistryError
from repro.ingest import LOADERS
from repro.ingest.report import IngestReport
from repro.ingest.streams import ClusteredStream, UniformStream

SHAPE = (16, 8, 8)


@pytest.fixture()
def plain(small_model):
    return Dataset.create(SHAPE, layout="zorder", drive=small_model,
                          seed=5)


class TestWithIngest:
    def test_spec_is_validated_eagerly(self, plain):
        with pytest.raises(RegistryError, match="unknown stream"):
            plain.with_ingest(stream="nope")
        with pytest.raises(RegistryError, match="unknown loader"):
            plain.with_ingest(loader="nope")
        with pytest.raises(DatasetError, match="stream"):
            plain.with_ingest(stream=42)

    def test_accepts_stream_classes_and_instances(self, plain):
        plain.with_ingest(stream=UniformStream)
        plain.with_ingest(
            stream=UniformStream(SHAPE, n_points=16), loader="adaptive"
        )

    def test_describe_key_gated_on_spec(self, plain):
        assert "ingest" not in plain.describe()
        plain.with_ingest(stream="clustered", n_points=64)
        out = plain.describe()["ingest"]
        assert out["stream"] == "clustered"
        assert out["loader"] == "fixed"
        assert out["n_points"] == 64

    def test_spec_survives_with_layout_clone(self, plain):
        plain.with_ingest(stream="clustered", n_points=64)
        clone = plain.with_layout("naive")
        assert clone.describe()["ingest"]["stream"] == "clustered"
        clone._ingest_spec["stream"] = "uniform"
        assert plain._ingest_spec["stream"] == "clustered"

    def test_spec_survives_sharding_and_replication(self, plain):
        plain.with_ingest(stream="drifting")
        plain.with_shards(2).with_replication(2)
        assert plain.describe()["ingest"]["stream"] == "drifting"


class TestIngestRun:
    def test_overrides_layer_on_spec(self, plain):
        plain.with_ingest(stream="clustered", n_points=64,
                          flush_points=32)
        run = plain.ingest(n_points=128)
        assert run.stream_spec == "clustered"
        assert run.n_points == 128
        assert run.flush_points == 32

    def test_fluent_setters(self, plain):
        run = (
            plain.ingest()
            .with_stream("drifting", spread=0.1)
            .with_loader("adaptive", quantile=0.9)
            .with_points(96, 32)
            .with_flush(48)
            .with_reorganize(throttle=0.5)
        )
        assert run.stream_spec == "drifting"
        assert run.stream_opts["spread"] == 0.1
        assert run.loader_spec == "adaptive"
        assert run.loader_opts["quantile"] == 0.9
        assert run.n_points == 96 and run.batch_points == 32
        assert run.flush_points == 48
        assert run.reorganize and run.throttle == 0.5

    def test_seed_defaults_to_the_dataset(self, plain):
        assert plain.ingest().build_stream().seed == plain.seed
        assert plain.ingest(seed=9).build_stream().seed == 9

    def test_stream_opts_reach_the_factory(self, plain):
        stream = plain.ingest(stream="clustered",
                              n_clusters=2).build_stream()
        assert isinstance(stream, ClusteredStream)
        assert stream.n_clusters == 2


class TestRunExecution:
    def test_every_point_acknowledged(self, plain):
        report = plain.ingest(n_points=200, batch_points=64,
                              flush_points=64).run()
        assert isinstance(report, IngestReport)
        assert report.n_points == 200
        assert report.n_batches == report.acked_batches == 4
        assert report.flushes >= 1
        assert report.store["n_points"] == 200
        assert report.total_ms > 0 and report.mb_per_s > 0

    def test_report_json_round_trips(self, plain):
        report = plain.ingest(n_points=64, flush_points=32).run()
        payload = json.loads(report.to_json())
        assert payload["n_points"] == 64
        assert payload["mb_per_s"] == pytest.approx(report.mb_per_s)
        assert "goodput" in report.render()

    def test_same_seed_runs_are_identical(self, small_model):
        def one():
            ds = Dataset.create(SHAPE, layout="zorder",
                                drive=small_model, seed=7)
            return ds.ingest(stream="clustered", n_points=128,
                             flush_points=64).run()

        assert one().to_json() == one().to_json()

    def test_reorganize_counts_into_total(self, small_model):
        def one(reorganize):
            ds = Dataset.create(SHAPE, layout="zorder",
                                drive=small_model, seed=7)
            return ds.ingest(
                stream="clustered", n_points=256, flush_points=64,
                loader_opts={"points_per_cell": 1},
                reorganize=reorganize,
            ).run()

        plainr = one(False)
        reorged = one(True)
        assert plainr.reorg is None
        assert reorged.reorg is not None
        assert reorged.reorg["pages_freed"] > 0
        assert reorged.total_ms == pytest.approx(
            plainr.total_ms + reorged.reorg["reorg_ms"]
        )


class TestAdaptiveRechunk:
    def test_rechunks_before_first_byte(self, small_model):
        ds = Dataset.create(SHAPE, layout="zorder", drive=small_model,
                            seed=7).with_shards(2)
        run = ds.ingest(stream="clustered", loader="adaptive",
                        n_points=256, flush_points=64)
        stream = run.build_stream()
        plan = LOADERS.get("adaptive").fn(ds, stream)
        run.run()
        assert tuple(ds.storage.shard_map.chunks[0].shape) \
            == tuple(plan.chunk_shape)

    def test_adapt_chunks_false_keeps_the_grid(self, small_model):
        ds = Dataset.create(SHAPE, layout="zorder", drive=small_model,
                            seed=7).with_shards(2)
        before = tuple(ds.storage.shard_map.chunks[0].shape)
        ds.ingest(stream="clustered", loader="adaptive", n_points=256,
                  flush_points=64, adapt_chunks=False).run()
        assert tuple(ds.storage.shard_map.chunks[0].shape) == before


class TestStoreGate:
    def test_sharded_write_path_the_gate_points_at_works(
            self, small_model):
        """The CellStore gate on sharded datasets names
        ``Dataset.ingest()`` as the write path; that path must accept
        sharded (and replicated) datasets."""
        ds = Dataset.create(SHAPE, layout="zorder", drive=small_model,
                            seed=5).with_shards(2).with_replication(2)
        report = ds.ingest(n_points=64, flush_points=16).run()
        assert report.n_points == 64
        assert report.skipped_copy_writes == 0
