"""Record streams: seeded, replayable, in-bounds, sample-independent."""

import numpy as np
import pytest

from repro.errors import IngestError
from repro.ingest.streams import (
    STREAMS,
    ClusteredStream,
    DriftingStream,
    ReplayStream,
    UniformStream,
    make_stream,
    stream_names,
)

DIMS = (16, 8, 8)


def _drain(stream):
    return np.concatenate(list(stream.batches()))


class TestRegistry:
    def test_builtins_registered(self):
        names = stream_names()
        for name in ("uniform", "clustered", "drifting", "replay"):
            assert name in names

    def test_entries_carry_descriptions(self):
        for name in ("uniform", "clustered", "drifting"):
            assert STREAMS.get(name).description

    def test_make_stream_by_name_class_and_instance(self):
        by_name = make_stream("uniform", DIMS, n_points=32)
        assert isinstance(by_name, UniformStream)
        by_class = make_stream(UniformStream, DIMS, n_points=32)
        assert isinstance(by_class, UniformStream)
        assert make_stream(by_name, DIMS) is by_name

    def test_make_stream_rejects_unknown_spec(self):
        with pytest.raises(IngestError, match="unknown stream spec"):
            make_stream(42, DIMS)


class TestReplayability:
    @pytest.mark.parametrize("name", ["uniform", "clustered", "drifting"])
    def test_batches_replay_identically(self, name):
        stream = make_stream(name, DIMS, n_points=300, batch_points=64,
                             seed=7)
        first = _drain(stream)
        second = _drain(stream)
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        a = _drain(UniformStream(DIMS, n_points=200, seed=1))
        b = _drain(UniformStream(DIMS, n_points=200, seed=2))
        assert not np.array_equal(a, b)

    def test_sample_does_not_disturb_batches(self):
        stream = ClusteredStream(DIMS, n_points=300, batch_points=50,
                                 seed=3)
        untouched = _drain(stream)
        stream.sample(64)
        assert np.array_equal(_drain(stream), untouched)

    def test_sample_is_deterministic(self):
        stream = DriftingStream(DIMS, n_points=300, seed=5)
        assert np.array_equal(stream.sample(40), stream.sample(40))


class TestShapes:
    @pytest.mark.parametrize("name", ["uniform", "clustered", "drifting"])
    def test_points_in_bounds_and_counted(self, name):
        stream = make_stream(name, DIMS, n_points=250, batch_points=64,
                             seed=11)
        coords = _drain(stream)
        assert coords.shape == (250, len(DIMS))
        assert coords.min() >= 0
        assert (coords < np.asarray(DIMS)).all()

    def test_n_batches_is_ceiling(self):
        stream = UniformStream(DIMS, n_points=250, batch_points=64)
        assert stream.n_batches == 4
        sizes = [len(b) for b in stream.batches()]
        assert sizes == [64, 64, 64, 58]

    def test_sample_clamps_to_stream_size(self):
        stream = UniformStream(DIMS, n_points=20)
        assert len(stream.sample(1000)) == 20

    def test_describe_keys(self):
        out = ClusteredStream(DIMS, n_points=64, seed=9).describe()
        assert out["stream"] == "clustered"
        assert out["dims"] == list(DIMS)
        assert out["n_points"] == 64
        assert "n_clusters" in out and "spread" in out


class TestReplayStream:
    def test_replays_exact_coords(self):
        coords = np.array([[0, 0, 0], [15, 7, 7], [3, 2, 1]])
        stream = ReplayStream(DIMS, coords=coords, batch_points=2)
        assert stream.n_points == 3
        assert np.array_equal(_drain(stream), coords)

    def test_rejects_rank_mismatch(self):
        with pytest.raises(IngestError, match="rank"):
            ReplayStream(DIMS, coords=np.zeros((4, 2), dtype=np.int64))

    def test_rejects_empty(self):
        with pytest.raises(IngestError):
            ReplayStream(DIMS, coords=np.zeros((0, 3), dtype=np.int64))


class TestValidation:
    def test_bad_dims(self):
        with pytest.raises(IngestError):
            UniformStream(())
        with pytest.raises(IngestError):
            UniformStream((4, 0))

    def test_bad_counts(self):
        with pytest.raises(IngestError):
            UniformStream(DIMS, n_points=0)
        with pytest.raises(IngestError):
            UniformStream(DIMS, batch_points=0)

    def test_bad_cluster_opts(self):
        with pytest.raises(IngestError):
            ClusteredStream(DIMS, n_clusters=0)
        with pytest.raises(IngestError):
            ClusteredStream(DIMS, spread=0.0)
        with pytest.raises(IngestError):
            DriftingStream(DIMS, spread=-1.0)

    def test_sample_size_must_be_positive(self):
        with pytest.raises(IngestError):
            UniformStream(DIMS).sample(0)
