"""The ingest sweep: layouts x loaders under one seeded stream."""

import json

import pytest

from repro.ingest import render_ingest_sweep, run_ingest_sweep

SHAPE = (16, 8, 8)
QUICK = dict(
    stream="clustered",
    n_points=512,
    batch_points=128,
    flush_points=256,
    n_shards=2,
    seed=42,
)


@pytest.fixture(scope="module")
def data(small_model):
    return run_ingest_sweep(
        SHAPE,
        layouts=("naive", "multimap"),
        loaders=("fixed",),
        dataset_opts={},
        drive=small_model,
        **QUICK,
    )


class TestRunIngestSweep:
    def test_structure(self, data):
        assert set(data) == {"naive", "multimap", "meta"}
        for layout in ("naive", "multimap"):
            cell = data[layout]["fixed"]
            assert cell["mb_per_s"] > 0
            assert cell["total_ms"] > 0
            assert cell["flushes"] >= 1
            assert cell["home_blocks"] > 0
            assert cell["plan"]["points_per_cell"] >= 1

    def test_meta_records_parameters(self, data):
        meta = data["meta"]
        assert meta["shape"] == list(SHAPE)
        assert meta["stream"] == "clustered"
        assert meta["n_points"] == 512
        assert meta["n_shards"] == 2
        assert meta["layouts"] == ["naive", "multimap"]
        assert meta["loaders"] == ["fixed"]

    def test_payload_is_json_serialisable(self, data):
        json.dumps(data)

    def test_cells_replay_identically(self, small_model):
        def one():
            return run_ingest_sweep(
                SHAPE, layouts=("zorder",), loaders=("fixed",),
                drive=small_model, **QUICK,
            )["zorder"]["fixed"]

        assert one() == one()


class TestRenderIngestSweep:
    def test_tables_name_every_layout_and_loader(self, data):
        out = render_ingest_sweep(data)
        assert "ingest goodput (MB/s) per loader" in out
        assert "overflowed points per loader" in out
        assert "write makespan (ms) per loader" in out
        assert "naive" in out and "multimap" in out
        assert "fixed MB/s" in out
