"""Bulk loaders: the fixed defaults and the adaptive sampling plan."""

import pytest

from repro.api import Dataset
from repro.errors import IngestError
from repro.ingest.loader import (
    LOADERS,
    IngestPlan,
    loader_names,
    resolve_loader,
)
from repro.ingest.streams import ClusteredStream, UniformStream

SHAPE = (16, 8, 8)


@pytest.fixture()
def plain(small_model):
    return Dataset.create(SHAPE, layout="zorder", drive=small_model,
                          seed=5)


@pytest.fixture()
def sharded(small_model):
    return Dataset.create(SHAPE, layout="zorder", drive=small_model,
                          seed=5).with_shards(2)


class TestRegistry:
    def test_builtins_registered(self):
        assert "fixed" in loader_names()
        assert "adaptive" in loader_names()

    def test_resolve_by_name_and_entry(self):
        entry = LOADERS.get("fixed")
        assert resolve_loader("fixed") is entry
        assert resolve_loader(entry) is entry

    def test_resolve_rejects_unknown_spec(self):
        with pytest.raises(IngestError, match="unknown loader spec"):
            resolve_loader(3.14)

    def test_entries_carry_descriptions(self):
        for name in loader_names():
            assert LOADERS.get(name).description


class TestFixedLoader:
    def test_keeps_configured_defaults(self, plain):
        stream = UniformStream(SHAPE, n_points=128, seed=1)
        plan = LOADERS.get("fixed").fn(plain, stream)
        assert isinstance(plan, IngestPlan)
        assert plan.points_per_cell == 16
        assert plan.fill_factor == 1.0
        assert plan.chunk_shape is None

    def test_honours_overrides(self, plain):
        stream = UniformStream(SHAPE, n_points=128, seed=1)
        plan = LOADERS.get("fixed").fn(plain, stream,
                                       points_per_cell=4,
                                       fill_factor=0.5)
        assert plan.points_per_cell == 4
        assert plan.fill_factor == 0.5


class TestAdaptiveLoader:
    def test_ppc_never_below_configured_floor(self, plain):
        stream = UniformStream(SHAPE, n_points=64, seed=2)
        plan = LOADERS.get("adaptive").fn(plain, stream,
                                          points_per_cell=16)
        assert plan.points_per_cell >= 16

    def test_sizes_cells_to_clustered_density(self, plain):
        """A hot clustered stream needs bigger cells than a uniform one
        of the same size — the density estimate must see the skew."""
        n = 2048
        hot = ClusteredStream(SHAPE, n_points=n, seed=3, n_clusters=2,
                              spread=0.02)
        flat = UniformStream(SHAPE, n_points=n, seed=3)
        fn = LOADERS.get("adaptive").fn
        assert fn(plain, hot).points_per_cell \
            > fn(plain, flat).points_per_cell

    def test_no_chunk_shape_when_unsharded(self, plain):
        stream = ClusteredStream(SHAPE, n_points=256, seed=4)
        plan = LOADERS.get("adaptive").fn(plain, stream)
        assert plan.chunk_shape is None
        assert plan.meta["split_axis"] is None

    def test_chunk_shape_slabs_one_axis_when_sharded(self, sharded):
        stream = ClusteredStream(SHAPE, n_points=256, seed=4)
        plan = LOADERS.get("adaptive").fn(sharded, stream)
        shape = plan.chunk_shape
        assert shape is not None and len(shape) == len(SHAPE)
        axis = plan.meta["split_axis"]
        for d, (s, full) in enumerate(zip(shape, SHAPE)):
            if d == axis:
                assert s == -(-full // 2)
            else:
                assert s == full

    def test_sampling_does_not_disturb_the_stream(self, plain):
        import numpy as np

        stream = ClusteredStream(SHAPE, n_points=256, seed=6)
        before = np.concatenate(list(stream.batches()))
        LOADERS.get("adaptive").fn(plain, stream)
        after = np.concatenate(list(stream.batches()))
        assert np.array_equal(before, after)

    def test_validates_quantile_and_headroom(self, plain):
        stream = UniformStream(SHAPE, n_points=64, seed=7)
        fn = LOADERS.get("adaptive").fn
        with pytest.raises(IngestError):
            fn(plain, stream, quantile=0.0)
        with pytest.raises(IngestError):
            fn(plain, stream, quantile=1.5)
        with pytest.raises(IngestError):
            fn(plain, stream, headroom=0.5)

    def test_plan_describe_round_trips(self, sharded):
        stream = ClusteredStream(SHAPE, n_points=256, seed=8)
        plan = LOADERS.get("adaptive").fn(sharded, stream)
        out = plan.describe()
        assert out["points_per_cell"] == plan.points_per_cell
        assert out["chunk_shape"] == list(plan.chunk_shape)
        assert out["loader"] == "adaptive"
        assert out["sampled_points"] == 256
