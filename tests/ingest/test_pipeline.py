"""The staged pipeline: buffering, flush packing, replica fan-out."""

import numpy as np
import pytest

from repro.api import Dataset
from repro.errors import IngestError
from repro.ingest.pipeline import IngestPipeline, IngestPrepared
from repro.ingest.streams import ReplayStream, UniformStream
from repro.query.executor import WritePrepared

SHAPE = (16, 8, 8)


def make_stream(n_points=64, batch_points=32, seed=1):
    return UniformStream(SHAPE, n_points=n_points,
                         batch_points=batch_points, seed=seed)


def plan_blocks(sub) -> np.ndarray:
    """Every LBN a prepared write sub-plan touches."""
    starts = np.asarray(sub.plan.starts, dtype=np.int64)
    lengths = np.asarray(sub.plan.lengths, dtype=np.int64)
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([
        np.arange(s, s + n, dtype=np.int64)
        for s, n in zip(starts.tolist(), lengths.tolist())
    ])


@pytest.fixture()
def plain(small_model):
    return Dataset.create(SHAPE, layout="zorder", drive=small_model,
                          seed=5)


@pytest.fixture()
def sharded(small_model):
    return Dataset.create(SHAPE, layout="zorder", drive=small_model,
                          seed=5).with_shards(2)


class TestValidation:
    def test_rejects_stream_dims_mismatch(self, plain):
        bad = UniformStream((4, 4), n_points=8)
        with pytest.raises(IngestError, match="dims"):
            IngestPipeline(plain, bad)

    def test_rejects_bad_flush_points(self, plain):
        with pytest.raises(IngestError, match="flush_points"):
            IngestPipeline(plain, make_stream(), flush_points=0)

    def test_stage_rejects_wrong_rank(self, plain):
        pipe = IngestPipeline(plain, make_stream())
        with pytest.raises(IngestError, match="rank"):
            pipe.stage(np.zeros((3, 2), dtype=np.int64))

    def test_stage_rejects_out_of_bounds(self, plain):
        pipe = IngestPipeline(plain, make_stream())
        with pytest.raises(IngestError, match="bounds"):
            pipe.stage([[16, 0, 0]])
        with pytest.raises(IngestError, match="bounds"):
            pipe.stage([[0, -1, 0]])


class TestStaging:
    def test_below_threshold_buffers_quietly(self, plain):
        pipe = IngestPipeline(plain, make_stream(), flush_points=100)
        ready = pipe.stage([[0, 0, 0], [1, 1, 1]])
        assert ready == []
        assert pipe.stats.streamed_points == 2
        assert pipe.stats.buffered_points == 2
        assert pipe.drain_disks() == [plain.mapper.disk_index]

    def test_crossing_threshold_names_the_disk(self, plain):
        pipe = IngestPipeline(plain, make_stream(), flush_points=3)
        assert pipe.stage([[0, 0, 0], [1, 0, 0]]) == []
        assert pipe.stage([[2, 0, 0]]) == [plain.mapper.disk_index]

    def test_sharded_thresholds_are_per_disk(self, sharded):
        """One disk's backlog crossing must not flush the other's."""
        chunks = sharded.storage.shard_map.chunks
        hot = chunks[0]
        target = np.asarray(hot.origin, dtype=np.int64)
        pipe = IngestPipeline(sharded, make_stream(), flush_points=4)
        other = next(c for c in chunks if c.disk != hot.disk)
        pipe.stage([np.asarray(other.origin, dtype=np.int64)])
        ready = pipe.stage([target, target, target, target])
        assert ready == [hot.disk]

    def test_single_coordinate_row_accepted(self, plain):
        pipe = IngestPipeline(plain, make_stream(), flush_points=100)
        pipe.stage([0, 0, 0])
        assert pipe.stats.streamed_points == 1


class TestFlush:
    def test_flush_of_nothing_is_none(self, plain):
        pipe = IngestPipeline(plain, make_stream())
        assert pipe.build_flush([plain.mapper.disk_index]) is None
        assert pipe.build_flush([]) is None

    def test_flush_covers_exactly_the_mapped_cells(self, plain):
        """No overflow: the write blocks are precisely the cells'
        home blocks under the dataset's own mapper."""
        coords = np.array([[0, 0, 0], [3, 1, 2], [15, 7, 7], [3, 1, 2]])
        pipe = IngestPipeline(
            plain, make_stream(),
            plan=None, flush_points=1,
            loader_opts={"points_per_cell": 64},
        )
        pipe.stage(coords)
        flush = pipe.build_flush(pipe.drain_disks())
        assert flush is not None and flush.n_points == 4
        cb = int(plain.mapper.cell_blocks)
        home = np.asarray(
            plain.mapper.lbns(np.unique(coords, axis=0)), dtype=np.int64
        )
        expected = np.unique(
            (home[:, None] + np.arange(cb, dtype=np.int64)).ravel()
        )
        got = np.unique(np.concatenate(
            [plan_blocks(s) for s in flush.prepared.subs]
        ))
        assert np.array_equal(got, expected)
        assert pipe.stats.home_blocks == expected.size

    def test_overflow_spills_into_the_overflow_extent(self, plain):
        coords = np.repeat([[2, 2, 2]], 10, axis=0)
        pipe = IngestPipeline(
            plain, make_stream(), flush_points=1,
            loader_opts={"points_per_cell": 2},
        )
        pipe.stage(coords)
        flush = pipe.build_flush(pipe.drain_disks())
        assert pipe.stats.overflow_points == 8
        store = pipe.stores[0]
        ext = store.overflow_extent
        blocks = np.concatenate(
            [plan_blocks(s) for s in flush.prepared.subs]
        )
        chain = blocks[(blocks >= ext.start)
                       & (blocks < ext.start + ext.nblocks)]
        assert chain.size > 0

    def test_flush_clears_the_buffers(self, plain):
        pipe = IngestPipeline(plain, make_stream(), flush_points=1)
        pipe.stage([[1, 2, 3], [4, 5, 6]])
        pipe.build_flush(pipe.drain_disks())
        assert pipe.drain_disks() == []
        assert pipe.stats.buffered_points == 0
        assert pipe.stats.flushes == 1
        assert pipe.stats.flushed_points == 2

    def test_sharded_subs_stay_on_their_owning_disks(self, sharded):
        rng = np.random.default_rng(3)
        coords = np.stack(
            [rng.integers(0, s, size=40) for s in SHAPE], axis=1
        )
        pipe = IngestPipeline(sharded, make_stream(), flush_points=1)
        pipe.stage(coords)
        flush = pipe.build_flush(pipe.drain_disks())
        for sub, source in zip(flush.prepared.subs,
                               flush.prepared.sources):
            assert sub.disk_index == source.disk
            assert pipe.chunks[source.chunk].disk == source.disk
            assert source.copy == 0


class TestReplicaFanOut:
    @pytest.fixture()
    def replicated(self, small_model):
        return Dataset.create(SHAPE, layout="zorder", drive=small_model,
                              seed=5).with_shards(2).with_replication(2)

    def test_every_chunk_writes_every_live_copy(self, replicated):
        rng = np.random.default_rng(4)
        coords = np.stack(
            [rng.integers(0, s, size=40) for s in SHAPE], axis=1
        )
        pipe = IngestPipeline(replicated, make_stream(), flush_points=1,
                              loader_opts={"points_per_cell": 2})
        pipe.stage(coords)
        flush = pipe.build_flush(pipe.drain_disks())
        by_chunk: dict = {}
        for sub, source in zip(flush.prepared.subs,
                               flush.prepared.sources):
            by_chunk.setdefault(source.chunk, []).append((source, sub))
        for ci, pairs in by_chunk.items():
            assert sorted(s.copy for s, _ in pairs) == [0, 1]
            disks = {s.disk for s, _ in pairs}
            assert len(disks) == 2  # copies live on distinct disks
            # same layout on every copy: byte-identical write shapes
            counts = {plan_blocks(sub).size for _, sub in pairs}
            assert len(counts) == 1

    def test_twin_overflow_extents_match_the_primary(self, replicated):
        pipe = IngestPipeline(replicated, make_stream())
        for ci, store in enumerate(pipe.stores):
            exts = pipe._copy_extents[ci]
            assert set(exts) == {0, 1}
            assert exts[0] is store.overflow_extent
            assert exts[1].nblocks == store.overflow_extent.nblocks

    def test_dead_copy_is_skipped_and_counted(self, replicated):
        replicated.storage.fail_disk(1)
        pipe = IngestPipeline(replicated, make_stream(), flush_points=1)
        pipe.stage([[0, 0, 0], [15, 7, 7]])
        flush = pipe.build_flush(pipe.drain_disks())
        assert all(s.disk != 1 for s in flush.prepared.sources)
        assert pipe.stats.skipped_copy_writes > 0


class TestCubePacking:
    def test_multimap_write_extents_cover_the_cells(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=5)
        mapper = ds.mapper
        rng = np.random.default_rng(6)
        coords = np.stack(
            [rng.integers(0, s, size=30) for s in SHAPE], axis=1
        )
        starts, lengths = mapper.write_extents(coords)
        assert starts.size == lengths.size > 0
        assert (lengths > 0).all()
        assert np.array_equal(starts, np.unique(starts))
        cell_lbns = np.asarray(mapper.lbns(coords), dtype=np.int64)
        for lbn in cell_lbns.tolist():
            inside = (starts <= lbn) & (lbn < starts + lengths)
            assert inside.sum() == 1

    def test_multimap_flush_writes_whole_cubes(self, small_model):
        """The packing path lays down more than the touched cells —
        whole track groups — in a handful of sequential runs."""
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=5)
        pipe = IngestPipeline(ds, make_stream(), flush_points=1,
                              loader_opts={"points_per_cell": 64})
        coords = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]])
        pipe.stage(coords)
        flush = pipe.build_flush(pipe.drain_disks())
        starts, lengths = ds.mapper.write_extents(coords)
        expected = np.concatenate([
            np.arange(s, s + n, dtype=np.int64)
            for s, n in zip(starts.tolist(), lengths.tolist())
        ])
        got = np.unique(np.concatenate(
            [plan_blocks(s) for s in flush.prepared.subs]
        ))
        assert np.array_equal(got, np.unique(expected))
        cb = int(ds.mapper.cell_blocks)
        assert got.size >= np.unique(coords, axis=0).shape[0] * cb


class TestPrepareBatch:
    def test_stage_only_batch_is_memory_only(self, plain):
        pipe = IngestPipeline(plain, make_stream(), flush_points=100,
                              stage_ms_per_point=0.5)
        prepared = pipe.prepare_batch([[0, 0, 0], [1, 1, 1]])
        assert isinstance(prepared, WritePrepared)
        assert not isinstance(prepared, IngestPrepared)
        assert len(prepared.plan.starts) == 0
        assert prepared.cache_ms == pytest.approx(1.0)
        assert prepared.n_cells == 2

    def test_triggered_flush_rides_along(self, plain):
        pipe = IngestPipeline(plain, make_stream(), flush_points=2)
        prepared = pipe.prepare_batch([[0, 0, 0], [1, 1, 1]])
        assert isinstance(prepared, IngestPrepared)
        assert prepared.is_write
        assert prepared.sources[0] is None  # the staging sub
        assert len(prepared.subs) == len(prepared.sources)
        assert all(s is not None for s in prepared.sources[1:])

    def test_final_batch_drains_everything(self, plain):
        pipe = IngestPipeline(plain, make_stream(), flush_points=1000)
        pipe.prepare_batch([[0, 0, 0]])
        prepared = pipe.prepare_batch([[1, 1, 1]], final=True)
        assert isinstance(prepared, IngestPrepared)
        assert pipe.stats.buffered_points == 0
        assert prepared.n_points == 2


class TestSummaries:
    def test_store_summary_aggregates_chunks(self, sharded):
        pipe = IngestPipeline(sharded, make_stream(), flush_points=1)
        pipe.stage([[0, 0, 0], [15, 7, 7]])
        pipe.build_flush(pipe.drain_disks())
        out = pipe.store_summary()
        assert out["n_chunks"] == len(pipe.chunks)
        assert out["n_points"] == 2
        assert out["points_per_cell"] == pipe.plan.points_per_cell

    def test_describe_carries_stream_loader_and_stats(self, plain):
        pipe = IngestPipeline(plain, make_stream())
        out = pipe.describe()
        assert out["loader"] == "fixed"
        assert out["stream"]["stream"] == "uniform"
        assert out["stats"]["streamed_points"] == 0
        assert out["n_copies"] == 1

    def test_replay_stream_through_pipeline(self, plain):
        coords = np.array([[1, 1, 1]] * 5 + [[2, 2, 2]] * 3)
        stream = ReplayStream(SHAPE, coords=coords, batch_points=4)
        pipe = IngestPipeline(plain, stream, flush_points=4)
        for batch in stream.batches():
            ready = pipe.stage(batch)
            if ready:
                pipe.build_flush(ready)
        pipe.build_flush(pipe.drain_disks())
        assert pipe.stats.streamed_points == 8
        assert pipe.stats.buffered_points == 0
        assert pipe.stores[0].stats().n_points == 8
