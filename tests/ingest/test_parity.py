"""Parity: the read path is bit-identical with ingest detached.

The acceptance bar of the ingest subsystem: loading the write path —
attaching a ``with_ingest`` spec, or building a full
:class:`IngestPipeline` (stores, twin overflow extents) against a
dataset — must leave every pure-read output byte-for-byte what the
PR 5 stack produced: executor ``QueryResult`` s, batch ``Report`` JSON,
traffic JSON, with and without an active cache.  And in a mixed storm,
the *read* clients' query draws must be identical with the ingest
client attached or not (ingest clients are seeded after every read
client).  Every comparison is ``==`` on full JSON or dataclass fields,
no tolerances — the same bar the shard, cache, and replica parities
hold.
"""

import numpy as np
import pytest

from repro.api import Dataset
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.streams import UniformStream
from repro.query.workload import random_beam, random_range_cube
from repro.traffic import QueryMix

LAYOUTS = ["multimap", "naive", "zorder", "hilbert"]
SHAPE = (24, 12, 12)


def attach_pipeline(ds):
    """Build the full write path against ``ds`` without flushing."""
    stream = UniformStream(SHAPE, n_points=64, seed=3)
    IngestPipeline(ds, stream, flush_points=1024)
    return ds


@pytest.mark.parametrize("layout", LAYOUTS)
class TestDetachedParity:
    def test_report_json_identical(self, small_model, layout):
        def run(ds):
            return ds.query().random_beams(axis=1, n=5) \
                     .range_selectivity(5.0).run()

        bare = Dataset.create(SHAPE, layout=layout, drive=small_model,
                              seed=11).with_shards(2)
        loaded = attach_pipeline(
            Dataset.create(SHAPE, layout=layout, drive=small_model,
                           seed=11).with_shards(2)
        )
        assert run(bare).to_json() == run(loaded).to_json()

    def test_executor_results_identical(self, small_model, layout):
        ds1 = Dataset.create(SHAPE, layout=layout,
                             drive=small_model).with_shards(2) \
            .with_replication(2)
        ds2 = attach_pipeline(
            Dataset.create(SHAPE, layout=layout,
                           drive=small_model).with_shards(2)
            .with_replication(2)
        )
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        for _ in range(3):
            q1 = random_beam(SHAPE, 1, rng1)
            q2 = random_beam(SHAPE, 1, rng2)
            assert ds1.storage.run_query(ds1.mapper, q1, rng=rng1) \
                == ds2.storage.run_query(ds2.mapper, q2, rng=rng2)
        for _ in range(2):
            q1 = random_range_cube(SHAPE, 8.0, rng1)
            q2 = random_range_cube(SHAPE, 8.0, rng2)
            assert ds1.storage.run_query(ds1.mapper, q1, rng=rng1) \
                == ds2.storage.run_query(ds2.mapper, q2, rng=rng2)


class TestTrafficParity:
    @pytest.mark.parametrize("layout", ["multimap", "zorder"])
    def test_seeded_traffic_json_identical(self, small_model, layout):
        def run(ds):
            return (
                ds.traffic()
                .clients(3, mix=QueryMix.beams(1, 2), queries=6)
                .slice_runs(8)
                .run()
            )

        bare = Dataset.create(SHAPE, layout=layout, drive=small_model,
                              seed=9).with_shards(2)
        loaded = attach_pipeline(
            Dataset.create(SHAPE, layout=layout, drive=small_model,
                           seed=9).with_shards(2)
        )
        assert run(bare).to_json() == run(loaded).to_json()

    def test_read_clients_draw_identically_in_a_mixed_storm(
            self, small_model):
        """Attaching an ingest client must not perturb the read
        clients' seeded query streams — only their timings."""
        def reads(ds, with_ingest):
            run = ds.traffic().clients(
                2, mix=QueryMix.beams(1, 2), queries=6
            )
            if with_ingest:
                run = run.ingest(stream="clustered", n_points=256,
                                 batch_points=128, flush_points=128)
            rep = run.run()
            out = {}
            for t in rep.traces:
                if t.client.startswith("c"):
                    out.setdefault(t.client, []).append(
                        (t.index, t.label, t.n_cells)
                    )
            return {c: sorted(v) for c, v in out.items()}

        def make():
            return Dataset.create(SHAPE, layout="multimap",
                                  drive=small_model, seed=17) \
                .with_shards(2)

        assert reads(make(), False) == reads(make(), True)


class TestCachedParity:
    def test_cached_batch_report_identical(self, small_model):
        """An active pool composes with the detached write path
        bit-for-bit (write-invalidate never fires without writes)."""
        def build(load):
            ds = Dataset.create(SHAPE, layout="multimap",
                                drive=small_model, seed=21) \
                .with_shards(2) \
                .with_cache(2048, policy="slru", prefetch="track")
            return attach_pipeline(ds) if load else ds

        r_bare = build(False).query().random_beams(axis=1, n=6) \
                             .repeats(2).run()
        r_load = build(True).query().random_beams(axis=1, n=6) \
                            .repeats(2).run()
        assert r_bare.to_json() == r_load.to_json()

    def test_cached_traffic_identical(self, small_model):
        def run(load):
            ds = Dataset.create(SHAPE, layout="multimap",
                                drive=small_model, seed=27) \
                .with_shards(2)
            ds.with_cache(2048, prefetch="track")
            if load:
                attach_pipeline(ds)
            return (
                ds.traffic()
                .clients(2, mix=QueryMix.beams(1, 2), queries=5)
                .slice_runs(8)
                .run()
            )

        assert run(False).to_json() == run(True).to_json()
