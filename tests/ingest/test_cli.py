"""The ``repro-bench ingest`` subcommand and registry listings."""

import json

from repro.bench.cli import main

INGEST_QUICK = [
    "ingest", "--shape", "16,8,8", "--layouts", "naive,multimap",
    "--loaders", "fixed", "--stream", "clustered", "--points", "512",
    "--batch-points", "128", "--flush-points", "256", "--shards", "2",
    "--drive", "minidrive", "--seed", "42", "--quiet",
]


class TestIngestSubcommand:
    def test_quick_sweep_runs(self):
        assert main(INGEST_QUICK) == 0

    def test_json_payload(self, tmp_path):
        rc = main(INGEST_QUICK + ["--json", str(tmp_path)])
        assert rc == 0
        payload = json.loads((tmp_path / "ingest.json").read_text())
        assert payload["meta"]["loaders"] == ["fixed"]
        assert payload["multimap"]["fixed"]["mb_per_s"] > 0

    def test_table_output(self, capsys):
        main([a for a in INGEST_QUICK if a != "--quiet"])
        out = capsys.readouterr().out
        assert "ingest goodput" in out

    def test_replicated_sweep(self):
        assert main(INGEST_QUICK + ["--k", "2", "--reorganize"]) == 0


class TestRegistryListings:
    def test_list_loaders(self, capsys):
        assert main(["--list-loaders"]) == 0
        out = capsys.readouterr().out
        assert "registered bulk loaders:" in out
        assert "fixed" in out and "adaptive" in out

    def test_list_streams(self, capsys):
        assert main(["--list-streams"]) == 0
        out = capsys.readouterr().out
        assert "registered record streams:" in out
        for name in ("uniform", "clustered", "drifting", "replay"):
            assert name in out

    def test_listings_combine(self, capsys):
        assert main(["--list-loaders", "--list-streams"]) == 0
        out = capsys.readouterr().out
        assert "bulk loaders" in out and "record streams" in out
