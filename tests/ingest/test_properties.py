"""Hypothesis property suites for the ingest invariants.

The contracts the write path leans on:

* **conservation** — buffered + flushed == streamed for any batch
  split: the final drain acknowledges every point exactly once, and
  the per-chunk stores hold precisely the points routed to them;
* **routing** — a per-disk write buffer only ever holds chunks whose
  owning member disk is that buffer's disk;
* **placement** — a flush's write blocks are exactly the home blocks
  the chunk mappers assign to the staged cells (plus overflow pages),
  so no byte lands outside the mapper's own placement;
* **replication** — every live copy of a chunk receives a write
  sub-plan of identical shape (same block count, same acknowledged
  points), the byte-equal-copies condition ``fail_disk`` relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Dataset
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.streams import UniformStream

SHAPE = (16, 8, 8)

coords_lists = st.lists(
    st.tuples(
        st.integers(0, SHAPE[0] - 1),
        st.integers(0, SHAPE[1] - 1),
        st.integers(0, SHAPE[2] - 1),
    ),
    min_size=1,
    max_size=80,
)


def build(small_model, *, shards=0, k=0, ppc=64):
    ds = Dataset.create(SHAPE, layout="zorder", drive=small_model,
                        seed=5)
    if shards:
        ds = ds.with_shards(shards)
    if k:
        ds = ds.with_replication(k)
    stream = UniformStream(SHAPE, n_points=8, seed=1)
    return ds, IngestPipeline(
        ds, stream, flush_points=10**9,
        loader_opts={"points_per_cell": ppc},
    )


def plan_blocks(sub) -> np.ndarray:
    starts = np.asarray(sub.plan.starts, dtype=np.int64)
    lengths = np.asarray(sub.plan.lengths, dtype=np.int64)
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([
        np.arange(s, s + n, dtype=np.int64)
        for s, n in zip(starts.tolist(), lengths.tolist())
    ])


@settings(max_examples=25, deadline=None)
@given(coords=coords_lists, split=st.integers(1, 5))
def test_no_point_lost_or_duplicated(small_model, coords, split):
    """buffered + flushed == streamed across any batch split, and the
    stores hold exactly the points each chunk was routed."""
    _, pipe = build(small_model, shards=2)
    arr = np.asarray(coords, dtype=np.int64)
    for part in np.array_split(arr, split):
        if len(part):
            pipe.stage(part)
    assert pipe.stats.streamed_points == len(arr)
    assert pipe.stats.buffered_points == len(arr)
    pipe.build_flush(pipe.drain_disks())
    assert pipe.stats.buffered_points == 0
    assert pipe.stats.flushed_points == len(arr)
    # per-chunk conservation against an independent count
    cid = (arr // np.asarray(pipe.chunks[0].shape)) @ pipe._grid_strides
    for ci, store in enumerate(pipe.stores):
        assert store.stats().n_points == int((cid == ci).sum())


@settings(max_examples=25, deadline=None)
@given(coords=coords_lists)
def test_buffers_only_hold_their_own_disks_chunks(small_model, coords):
    _, pipe = build(small_model, shards=2)
    pipe.stage(np.asarray(coords, dtype=np.int64))
    total = 0
    for disk, chunk_bufs in pipe._buffers.items():
        for ci, cells in chunk_bufs.items():
            assert pipe.chunks[ci].disk == disk
            total += sum(cells.values())
    assert total == len(coords)


@settings(max_examples=25, deadline=None)
@given(coords=coords_lists)
def test_flush_blocks_are_the_mappers_cells(small_model, coords):
    """With no overflow, the flushed blocks per chunk are exactly the
    chunk mapper's home blocks for the staged cells."""
    _, pipe = build(small_model, shards=2, ppc=512)
    arr = np.asarray(coords, dtype=np.int64)
    pipe.stage(arr)
    flush = pipe.build_flush(pipe.drain_disks())
    assert flush is not None
    got: dict[int, np.ndarray] = {}
    for sub, source in zip(flush.prepared.subs, flush.prepared.sources):
        got[source.chunk] = np.union1d(
            got.get(source.chunk, np.empty(0, dtype=np.int64)),
            plan_blocks(sub),
        )
    cid = (arr // np.asarray(pipe.chunks[0].shape)) @ pipe._grid_strides
    for ci in np.unique(cid).tolist():
        chunk = pipe.chunks[ci]
        mapper = pipe._chunk_mappers[ci]
        local = np.unique(
            arr[cid == ci] - np.asarray(chunk.origin, dtype=np.int64),
            axis=0,
        )
        cb = int(mapper.cell_blocks)
        home = np.asarray(mapper.lbns(local), dtype=np.int64)
        expected = np.unique(
            (home[:, None] + np.arange(cb, dtype=np.int64)).ravel()
        )
        assert np.array_equal(got[ci], expected)
    assert set(got) == set(np.unique(cid).tolist())


@settings(max_examples=20, deadline=None)
@given(coords=coords_lists, ppc=st.integers(1, 8))
def test_replica_copies_get_identical_write_shapes(small_model, coords,
                                                   ppc):
    """k=2: every chunk's flush fans out to both copies with the same
    block count and acknowledged points — even when chains spill."""
    _, pipe = build(small_model, shards=2, k=2, ppc=ppc)
    pipe.stage(np.asarray(coords, dtype=np.int64))
    flush = pipe.build_flush(pipe.drain_disks())
    assert flush is not None
    by_chunk: dict[int, list] = {}
    for sub, source in zip(flush.prepared.subs, flush.prepared.sources):
        by_chunk.setdefault(source.chunk, []).append((source, sub))
    for pairs in by_chunk.values():
        assert sorted(s.copy for s, _ in pairs) == [0, 1]
        assert len({s.disk for s, _ in pairs}) == 2
        assert len({plan_blocks(sub).size for _, sub in pairs}) == 1
        assert len({sub.n_cells for _, sub in pairs}) == 1
