"""Background reorganisation: chain folding, throttling, interference."""

import json

import numpy as np
import pytest

from repro.api import Dataset
from repro.errors import IngestError
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.reorg import plan_reorganize
from repro.ingest.streams import UniformStream

SHAPE = (16, 8, 8)


def overflowing_pipeline(small_model, *, shards=2, ppc=1):
    """A pipeline whose flush left chains hanging off hot cells."""
    ds = Dataset.create(SHAPE, layout="zorder", drive=small_model,
                        seed=5)
    if shards:
        ds = ds.with_shards(shards)
    stream = UniformStream(SHAPE, n_points=8, seed=1)
    pipe = IngestPipeline(ds, stream, flush_points=1,
                          loader_opts={"points_per_cell": ppc})
    coords = np.repeat([[0, 0, 0], [15, 7, 7]], 6, axis=0)
    pipe.stage(coords)
    pipe.build_flush(pipe.drain_disks())
    return pipe


class TestPlanReorganize:
    def test_nothing_to_do_returns_none(self, small_model):
        # 6 points per cell: above the reclaim floor, below capacity —
        # no chains and no underflow, so there is nothing to fold
        pipe = overflowing_pipeline(small_model, ppc=8)
        assert not pipe.needs_reorganization
        assert plan_reorganize(pipe) is None

    def test_folds_chains_back_into_cells(self, small_model):
        pipe = overflowing_pipeline(small_model)
        assert any(s.chained_cells().size for s in pipe.stores)
        report = plan_reorganize(pipe)
        assert report is not None
        assert report.pages_freed > 0
        assert report.n_blocks > 0
        assert all(s.chained_cells().size == 0 for s in pipe.stores)

    def test_models_io_on_every_touched_disk(self, small_model):
        pipe = overflowing_pipeline(small_model)
        report = plan_reorganize(pipe)
        touched = {
            pipe.chunks[ci].disk for ci in report.chunks
        }
        assert set(report.io_ms_by_disk) == touched
        assert all(ms > 0 for ms in report.io_ms_by_disk.values())
        assert report.ideal_ms == max(report.io_ms_by_disk.values())

    def test_throttle_stretches_the_window(self, small_model):
        full = plan_reorganize(overflowing_pipeline(small_model),
                               throttle=1.0)
        half = plan_reorganize(overflowing_pipeline(small_model),
                               throttle=0.5)
        assert half.ideal_ms == pytest.approx(full.ideal_ms)
        assert half.reorg_ms == pytest.approx(2.0 * full.reorg_ms)

    def test_throttle_validation(self, small_model):
        pipe = overflowing_pipeline(small_model)
        with pytest.raises(IngestError, match="throttle"):
            plan_reorganize(pipe, throttle=0.0)
        with pytest.raises(IngestError, match="throttle"):
            plan_reorganize(pipe, throttle=1.5)

    def test_foreground_head_state_is_untouched(self, small_model):
        """The background model runs on fresh drive instances."""
        pipe = overflowing_pipeline(small_model)
        drives = pipe.storage.volume.drives
        before = [(d._track, d._time_ms) for d in drives]
        plan_reorganize(pipe)
        assert [(d._track, d._time_ms) for d in drives] == before


class TestReorgReport:
    def test_interference_reuses_the_rebuild_dilation(self, small_model):
        report = plan_reorganize(overflowing_pipeline(small_model))
        profile = report.interference()
        assert set(profile) == set(report.io_ms_by_disk)
        for disk, row in profile.items():
            assert 0 < row["busy_frac"] < 1
            assert row["foreground_dilation"] >= 1.0
            assert row["foreground_dilation"] == pytest.approx(
                1.0 / (1.0 - row["busy_frac"])
            )

    def test_to_dict_round_trips_through_json(self, small_model):
        report = plan_reorganize(overflowing_pipeline(small_model))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["pages_freed"] == report.pages_freed
        assert payload["throttle"] == 1.0
        assert payload["reorg_ms"] == pytest.approx(report.reorg_ms)
        assert set(payload["interference"]) == {
            str(d) for d in report.io_ms_by_disk
        }
