"""Mixed read/write storms: ingest batches on the traffic event heap."""

import pytest

from repro.api import Dataset
from repro.errors import QueryError

SHAPE = (24, 12, 12)


def make(small_model, *, seed=42, shards=4, k=2, layout="multimap"):
    ds = Dataset.create(SHAPE, layout=layout, drive=small_model,
                        seed=seed).with_shards(shards)
    if k > 1:
        ds = ds.with_replication(k)
    return ds


class TestMixedStorm:
    def test_healthy_storm_completes_reads_and_writes(self, small_model):
        ds = make(small_model, shards=2, k=1)
        rep = (
            ds.traffic()
            .clients(2, queries=5)
            .ingest(stream="clustered", n_points=384, batch_points=128,
                    flush_points=128)
            .run()
        )
        stats = rep.meta["ingest"]["stats"]
        assert stats["streamed_points"] == 384
        assert stats["buffered_points"] == 0
        assert stats["flushed_points"] == 384
        per_client = {}
        for t in rep.traces:
            per_client.setdefault(t.client, []).append(t)
        assert len(per_client["c0"]) == len(per_client["c1"]) == 5
        assert len(per_client["ingest0"]) == 3  # 384 / 128 batches
        assert all(
            t.label.startswith("ingest[")
            for t in per_client["ingest0"]
        )

    def test_storm_with_mid_run_kill_loses_nothing(self, small_model):
        """The acceptance storm: 4 shards, k=2, one disk killed mid-run
        — every read query and every ingest batch completes, the dead
        copy's write subs are dropped (survivors hold the batch)."""
        ds = make(small_model)
        rep = (
            ds.traffic()
            .clients(2, queries=6)
            .ingest(stream="clustered", n_points=768, batch_points=128,
                    flush_points=256)
            .kill(5.0, 1)
            .run()
        )
        fails = rep.meta["failures"]
        assert fails["dropped_write_subs"] >= 1
        stats = rep.meta["ingest"]["stats"]
        assert stats["streamed_points"] == 768
        assert stats["buffered_points"] == 0
        per_client = {}
        for t in rep.traces:
            per_client.setdefault(t.client, 0)
            per_client[t.client] += 1
        assert per_client == {"c0": 6, "c1": 6, "ingest0": 6}

    def test_acked_batches_live_on_survivors(self, small_model):
        """After the kill, every chunk still has a live copy holding
        the acknowledged points — nothing needs the dead disk."""
        ds = make(small_model)
        (
            ds.traffic()
            .clients(1, queries=4)
            .ingest(stream="clustered", n_points=512, batch_points=128,
                    flush_points=128)
            .kill(5.0, 1)
            .run()
        )
        rm = ds.storage.replica_map
        failed = ds.storage.failed
        assert failed == {1}
        for ci in range(len(ds.storage.shard_map.chunks)):
            assert rm.live_copies(ci, failed)

    def test_unreplicated_write_loss_is_loud(self, small_model):
        """k=1: a disk dying with a flush in flight would lose an
        acknowledged batch — the engine must refuse, not limp on."""
        ds = make(small_model, shards=2, k=1)
        storm = (
            ds.traffic()
            .ingest(stream="clustered", n_points=768, batch_points=128,
                    flush_points=128)
            .kill(1.0, 1)
        )
        with pytest.raises(QueryError, match="acknowledged ingest batch"):
            storm.run()


class TestMetaGating:
    def test_no_ingest_client_no_ingest_meta(self, small_model):
        ds = make(small_model, shards=2, k=1)
        rep = ds.traffic().clients(1, queries=3).run()
        assert "ingest" not in rep.meta
        assert "failures" not in rep.meta

    def test_read_only_failures_have_no_write_counter(self, small_model):
        ds = make(small_model, shards=2, k=2)
        rep = (
            ds.traffic().clients(2, queries=4).kill(5.0, 1).run()
        )
        assert "dropped_write_subs" not in rep.meta["failures"]

    def test_ingest_meta_describes_the_pipeline(self, small_model):
        ds = make(small_model, shards=2, k=1)
        rep = (
            ds.traffic()
            .clients(1, queries=3)
            .ingest(stream="uniform", loader="fixed", n_points=256,
                    batch_points=128, flush_points=128)
            .run()
        )
        out = rep.meta["ingest"]
        assert out["loader"] == "fixed"
        assert out["stream"]["stream"] == "uniform"
        assert out["flush_points"] == 128

    def test_named_ingest_client_and_describe(self, small_model):
        ds = make(small_model, shards=2, k=1)
        rep = (
            ds.traffic()
            .clients(1, queries=3)
            .ingest(name="writer", n_points=128, flush_points=64)
            .run()
        )
        clients = {c["name"]: c for c in rep.meta["clients"]}
        assert clients["writer"]["role"] == "ingest"
        assert any(t.client == "writer" for t in rep.traces)


class TestSpecLayering:
    def test_with_ingest_spec_feeds_the_storm(self, small_model):
        ds = make(small_model, shards=2, k=1)
        ds.with_ingest(stream="clustered", n_points=256,
                       batch_points=128, flush_points=128)
        rep = ds.traffic().clients(1, queries=3).ingest().run()
        assert rep.meta["ingest"]["stream"]["stream"] == "clustered"
        assert rep.meta["ingest"]["stats"]["streamed_points"] == 256
