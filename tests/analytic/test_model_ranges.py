"""Range-query predictions of the analytic model vs the simulator."""

import numpy as np
import pytest

from repro.analytic import AnalyticModel, DriveParameters
from repro.core import MultiMapMapper
from repro.lvm import LogicalVolume
from repro.mappings import NaiveMapper
from repro.query import StorageManager
from repro.disk import atlas_10k3

DIMS = (259, 128, 64)


@pytest.fixture(scope="module")
def analytic():
    return AnalyticModel(DriveParameters.from_model(atlas_10k3()))


class TestRangePredictions:
    @pytest.mark.parametrize("shape", [(20, 20, 20), (56, 56, 56)])
    def test_naive_range_within_2x(self, analytic, shape):
        vol = LogicalVolume([atlas_10k3()], depth=128)
        naive = NaiveMapper(DIMS, vol.allocate_blocks(0, int(np.prod(DIMS))))
        sm = StorageManager(vol)
        rng = np.random.default_rng(3)
        lo = tuple(int(rng.integers(0, s - w)) for s, w in zip(DIMS, shape))
        hi = tuple(a + w for a, w in zip(lo, shape))
        sim = sm.range(naive, lo, hi, rng=rng).total_ms
        pred = analytic.naive_range_ms(DIMS, shape)
        assert 0.5 < pred / sim < 2.0

    @pytest.mark.parametrize("shape", [(20, 20, 20), (56, 56, 56)])
    def test_multimap_range_within_2x(self, analytic, shape):
        vol = LogicalVolume([atlas_10k3()], depth=128)
        mm = MultiMapMapper(DIMS, vol)
        sm = StorageManager(vol)
        rng = np.random.default_rng(3)
        lo = tuple(int(rng.integers(0, s - w)) for s, w in zip(DIMS, shape))
        hi = tuple(a + w for a, w in zip(lo, shape))
        sim = sm.range(mm, lo, hi, rng=rng).total_ms
        pred = analytic.multimap_range_ms(DIMS, shape, mm.K)
        assert 0.5 < pred / sim < 2.0

    def test_full_width_slab_streams(self, analytic):
        """A slab covering dims 0 and 1 is a contiguous scan for Naive."""
        shape = (DIMS[0], DIMS[1], 8)
        n = int(np.prod(shape))
        pred = analytic.naive_range_ms(DIMS, shape)
        stream = analytic.streaming_ms(n)
        assert pred == pytest.approx(
            stream + analytic.initial_positioning_ms(), rel=0.01
        )

    def test_predictions_scale_with_rows(self, analytic):
        small = analytic.multimap_range_ms(DIMS, (10, 10, 10))
        large = analytic.multimap_range_ms(DIMS, (10, 20, 20))
        assert large == pytest.approx(
            analytic.initial_positioning_ms()
            + 4 * (small - analytic.initial_positioning_ms()),
            rel=0.01,
        )
