"""Tests for the analytic cost model, including simulator agreement."""

import numpy as np
import pytest

from repro.analytic import AnalyticModel, DriveParameters
from repro.core import MultiMapMapper
from repro.errors import QueryError
from repro.lvm import LogicalVolume
from repro.mappings import NaiveMapper
from repro.query import StorageManager
from repro.disk import atlas_10k3


@pytest.fixture(scope="module")
def model():
    return atlas_10k3()


@pytest.fixture(scope="module")
def params(model):
    return DriveParameters.from_model(model)


@pytest.fixture(scope="module")
def analytic(params):
    return AnalyticModel(params)


class TestDriveParameters:
    def test_from_model_reads_zone0(self, params, model):
        assert params.track_length == 686
        assert params.rotation_ms == pytest.approx(6.0)
        assert params.settle_ms == pytest.approx(1.2)
        assert params.depth == 128

    def test_sector_time(self, params):
        assert params.sector_ms == pytest.approx(6.0 / 686)

    def test_hop_cadence_exceeds_settle_plus_overhead(self, params):
        assert params.hop_ms >= params.settle_ms + params.overhead_ms


class TestPrimitives:
    def test_streaming_rate(self, analytic, params):
        t = analytic.streaming_ms(686 * 4)
        assert t == pytest.approx(4 * 6.0 + 4 * params.settle_ms, rel=0.05)

    def test_stride_below_track_waits_rotation(self, analytic, params):
        t = analytic.stride_step_ms(343)  # half a track
        assert t == pytest.approx(3.0, rel=0.35)

    def test_tiny_stride_misses_a_revolution(self, analytic, params):
        t = analytic.stride_step_ms(4)
        assert t > params.rotation_ms * 0.9

    def test_large_stride_costs_settle_plus_latency(self, analytic, params):
        t = analytic.stride_step_ms(686 * 50)  # 50 tracks ~ 12 cylinders
        expected = params.overhead_ms + params.settle_ms + 3.0
        assert t == pytest.approx(expected, rel=0.1)

    def test_semi_seq_step_is_hop(self, analytic, params):
        assert analytic.semi_sequential_step_ms() == pytest.approx(
            params.hop_ms
        )

    def test_stride_rejects_nonpositive(self, analytic):
        with pytest.raises(QueryError):
            analytic.stride_step_ms(0)


class TestPredictionsVsSimulator:
    """The §5 model must land near simulated times (tolerances pinned)."""

    DIMS = (259, 128, 64)

    @pytest.fixture(scope="class")
    def measured(self, model):
        out = {}
        vol = LogicalVolume([model], depth=128)
        naive = NaiveMapper(
            self.DIMS, vol.allocate_blocks(0, int(np.prod(self.DIMS)))
        )
        sm = StorageManager(vol)
        rng = np.random.default_rng(0)
        for axis in range(3):
            vals = [
                sm.beam(naive, axis, (5, 5, 5), rng=rng).total_ms
                for _ in range(5)
            ]
            out[("naive", axis)] = float(np.mean(vals))
        volm = LogicalVolume([model], depth=128)
        mm = MultiMapMapper(self.DIMS, volm)
        smm = StorageManager(volm)
        for axis in range(3):
            vals = [
                smm.beam(mm, axis, (5, 5, 5), rng=rng).total_ms
                for _ in range(5)
            ]
            out[("multimap", axis)] = float(np.mean(vals))
        out["mm_K"] = mm.K
        return out

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_naive_beams_within_35pct(self, analytic, measured, axis):
        pred = analytic.naive_beam_ms(self.DIMS, axis)
        sim = measured[("naive", axis)]
        assert pred == pytest.approx(sim, rel=0.35)

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_multimap_beams_within_35pct(self, analytic, measured, axis):
        pred = analytic.multimap_beam_ms(self.DIMS, axis, measured["mm_K"])
        sim = measured[("multimap", axis)]
        assert pred == pytest.approx(sim, rel=0.35)

    def test_range_prediction_orders_mappings(self, analytic):
        """The model must predict MultiMap <= Naive for small boxes
        (the paper's low-selectivity regime)."""
        shape = (26, 26, 26)
        naive = analytic.naive_range_ms(self.DIMS, shape)
        mm = analytic.multimap_range_ms(self.DIMS, shape)
        assert mm < naive

    def test_speedup_helpers(self, analytic):
        sp = analytic.predicted_beam_speedups(self.DIMS)
        assert sp[1] > 1.0 and sp[2] > 1.0
        assert 0.5 < sp[0] < 2.0
        r = analytic.predicted_range_speedup(self.DIMS, (26, 26, 26))
        assert r > 1.0

    def test_range_shape_validation(self, analytic):
        with pytest.raises(QueryError):
            analytic.naive_range_ms(self.DIMS, (5, 5))

    def test_zero_rows(self, analytic):
        assert analytic.multimap_range_ms(self.DIMS, (5, 0, 5)) == 0.0
