"""Shared fixtures: small disks that keep unit tests fast."""

import numpy as np
import pytest

from repro.disk import (
    AdjacencyModel,
    DiskDrive,
    atlas_10k3,
    cheetah_36es,
    synthetic_disk,
    toy_disk,
)


@pytest.fixture(scope="session")
def atlas_model():
    return atlas_10k3()


@pytest.fixture(scope="session")
def cheetah_model():
    return cheetah_36es()


@pytest.fixture()
def atlas_drive(atlas_model):
    return DiskDrive(atlas_model)


@pytest.fixture()
def cheetah_drive(cheetah_model):
    return DiskDrive(cheetah_model)


@pytest.fixture(scope="session")
def small_model():
    """A small two-zone disk: fast to simulate, non-trivial geometry."""
    return synthetic_disk(
        "small",
        rpm=10_000,
        settle_ms=1.0,
        settle_cylinders=8,
        surfaces=2,
        zone_specs=[(200, 120), (200, 90)],
        avg_seek_ms=3.0,
        full_stroke_ms=6.0,
    )


@pytest.fixture()
def small_drive(small_model):
    return DiskDrive(small_model)


@pytest.fixture()
def small_adjacency(small_model):
    return AdjacencyModel.for_model(small_model)


@pytest.fixture(scope="session")
def toy_model():
    return toy_disk()


@pytest.fixture()
def toy_adjacency(toy_model):
    return AdjacencyModel.for_model(toy_model, depth=9)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def make_dataset(small_model):
    """Factory for fresh same-disk datasets (fresh seed streams each);
    used by the traffic suites, where replaying a seed needs a new
    Dataset."""
    from repro.api import Dataset

    def make(layout="multimap", seed=42, shape=(24, 12, 12), **opts):
        return Dataset.create(
            shape, layout=layout, drive=small_model, seed=seed, **opts
        )

    return make
