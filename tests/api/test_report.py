"""Report structure: aggregates, JSON round-trips, table rendering."""

import json

import numpy as np
import pytest

from repro.api import Dataset
from repro.api.report import Report, make_record
from repro.query import BeamQuery, QueryResult, RangeQuery

DIMS = (16, 8, 8)


def _result(total_ms=10.0, n_cells=5, policy="sorted"):
    return QueryResult(
        mapper="naive", total_ms=total_ms, n_cells=n_cells, n_blocks=5,
        n_runs=5, seek_ms=2.0, rotation_ms=3.0, transfer_ms=4.0,
        switch_ms=1.0, policy=policy,
    )


def _report(values=(10.0, 20.0, 30.0)):
    records = tuple(
        make_record(BeamQuery(axis=0, fixed=(0, 1, 1)), _result(v), rep)
        for rep, v in enumerate(values)
    )
    return Report(records=records, layout="naive", drive="toy",
                  shape=DIMS)


class TestAggregates:
    def test_mean_and_percentiles(self):
        rep = _report((10.0, 20.0, 30.0))
        assert rep.mean("total_ms") == pytest.approx(20.0)
        assert rep.percentile(50, "total_ms") == pytest.approx(20.0)
        assert rep.total_ms == pytest.approx(60.0)
        agg = rep.aggregates()
        assert agg["n_queries"] == 3
        assert agg["total_ms"]["min"] == 10.0
        assert agg["total_ms"]["max"] == 30.0
        assert agg["total_ms"]["p50"] == 20.0
        assert "ms_per_cell" in agg

    def test_empty_report(self):
        rep = Report(records=())
        assert rep.mean() == 0.0
        assert rep.percentile(95) == 0.0
        assert rep.total_ms == 0.0
        assert rep.aggregates() == {"n_queries": 0}
        assert len(rep) == 0

    def test_mean_default_is_ms_per_cell(self):
        rep = _report((10.0,))
        assert rep.mean() == pytest.approx(10.0 / 5)


class TestSerialisation:
    def test_to_json_round_trip(self):
        rep = _report()
        data = json.loads(rep.to_json())
        assert data["layout"] == "naive"
        assert data["drive"] == "toy"
        assert data["shape"] == list(DIMS)
        assert len(data["queries"]) == 3
        q0 = data["queries"][0]
        assert q0["label"] == "beam[axis=0]"
        assert q0["result"]["total_ms"] == 10.0
        assert data["aggregates"]["total_ms"]["mean"] == 20.0

    def test_labels_describe_queries(self):
        beam = make_record(BeamQuery(axis=2, fixed=(1, 1, 0)), _result())
        box = make_record(RangeQuery((0, 0, 0), (4, 2, 2)), _result())
        assert beam.label == "beam[axis=2]"
        assert box.label == "range(4, 2, 2)"

    def test_render_table_contains_rows(self):
        rep = _report()
        table = rep.render_table()
        assert "total ms" in table
        assert "beam[axis=0]" in table
        assert "10.000" in table
        assert str(rep).startswith("[naive on toy]")


class TestEndToEnd:
    def test_real_batch_report(self, small_model):
        ds = Dataset.create(DIMS, layout="multimap", drive=small_model,
                            depth=16, seed=8)
        rep = ds.random_beams(1, n=2).range_selectivity(10.0).run()
        assert len(rep) == 3
        assert rep.mean("total_ms") > 0
        parsed = json.loads(rep.to_json())
        assert parsed["aggregates"]["n_queries"] == 3
        assert all(r.result.total_ms > 0 for r in rep)
        # iteration yields records in execution order
        assert [r.repeat for r in rep] == [0, 0, 0]

    def test_results_property_matches_records(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=16, seed=8)
        rep = ds.beam(0, fixed=(0, 3, 3)).run(repeats=2)
        assert rep.results == tuple(r.result for r in rep.records)
