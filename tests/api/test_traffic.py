"""TrafficRun builder API, storm sweeps, and the CLI subcommand."""

import json

import numpy as np
import pytest

from repro.api import Dataset, TrafficRun
from repro.errors import QueryError
from repro.traffic import QueryMix, Replay, render_storm, run_storm

SHAPE = (24, 12, 12)


@pytest.fixture()
def ds(small_model):
    return Dataset.create(SHAPE, layout="multimap", drive=small_model,
                          seed=42)


class TestBuilder:
    def test_facade_exports(self):
        import repro

        assert repro.TrafficRun is TrafficRun
        assert "TrafficReport" in dir(repro)

    def test_traffic_returns_builder(self, ds):
        run = ds.traffic()
        assert isinstance(run, TrafficRun)
        assert len(run) == 0

    def test_client_naming(self, ds):
        run = (
            ds.traffic()
            .clients(2)
            .clients(1, name="vip")
            .clients(2, name="batch")
        )
        rep = run.run()
        assert rep.client_names() == ("c0", "c1", "vip", "batch0",
                                      "batch1")

    def test_default_mix_skips_streaming_axis(self, ds):
        rep = ds.traffic().clients(1, queries=6).run()
        labels = {tr.label for tr in rep.traces}
        assert labels <= {"beam[axis=1]", "beam[axis=2]"}

    def test_arrival_shorthands(self, ds):
        run = (
            ds.traffic()
            .closed(1, think_ms=5.0, queries=2)
            .poisson(1, rate_qps=100, queries=2)
            .bursty(1, burst_rate_per_s=50, queries=2)
        )
        rep = run.run()
        models = [c["arrival"]["model"] for c in rep.meta["clients"]]
        assert models == ["closed", "poisson", "bursty"]
        assert len(rep) == 6

    def test_rejects_zero_clients(self, ds):
        with pytest.raises(QueryError):
            ds.traffic().clients(0)

    def test_replay_mix_accepted(self, ds):
        from repro.query.workload import BeamQuery

        rep = (
            ds.traffic()
            .clients(1, mix=Replay([BeamQuery(1, (2, 0, 3))]),
                     queries=3)
            .run()
        )
        assert all(tr.label == "beam[axis=1]" for tr in rep.traces)

    def test_meta_records_dataset_and_seed(self, ds):
        rep = ds.traffic().clients(1, queries=2).run()
        assert rep.meta["seed"] == 42
        assert rep.meta["dataset"]["layout"] == "multimap"
        assert rep.meta["dataset"]["shape"] == list(SHAPE)

    def test_explicit_rng_multi_client(self, small_model):
        d1 = Dataset.create(SHAPE, layout="multimap", drive=small_model)
        d2 = Dataset.create(SHAPE, layout="multimap", drive=small_model)
        a = (d1.traffic().clients(3, queries=3)
             .run(rng=np.random.default_rng(5)))
        b = (d2.traffic().clients(3, queries=3)
             .run(rng=np.random.default_rng(5)))
        assert a.to_json() == b.to_json()


class TestStorm:
    def test_sweep_structure_and_render(self, small_model):
        data = run_storm(
            SHAPE,
            layouts=("naive", "multimap"),
            client_counts=(1, 2),
            drive=small_model,
            queries_per_client=3,
            seed=1,
        )
        assert set(data) == {"naive", "multimap", "meta"}
        for layout in ("naive", "multimap"):
            assert set(data[layout]) == {1, 2}
            for agg in data[layout].values():
                assert agg["throughput_qps"] > 0
                assert "p95" in agg["latency_ms"]
        text = render_storm(data)
        assert "throughput" in text
        for pct in ("p50", "p95", "p99"):
            assert f"{pct} latency" in text

    def test_same_streams_across_layouts(self, small_model):
        """Fairness: client k draws identical queries per layout cell."""
        data = run_storm(
            SHAPE,
            layouts=("naive", "multimap"),
            client_counts=(2,),
            drive=small_model,
            queries_per_client=4,
            seed=3,
        )
        assert (
            data["naive"][2]["served_blocks"]
            == data["multimap"][2]["served_blocks"]
        )


class TestCliTraffic:
    def test_subcommand_runs(self, capsys):
        from repro.bench.cli import main

        rc = main([
            "traffic", "--shape", "16,8,8", "--clients", "1,2",
            "--queries", "2", "--layouts", "naive,multimap",
            "--slice-runs", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "multimap" in out

    def test_subcommand_json_out(self, tmp_path, capsys):
        from repro.bench.cli import main

        out = tmp_path / "storm.json"
        rc = main([
            "traffic", "--shape", "16,8,8", "--clients", "1",
            "--queries", "2", "--layouts", "multimap",
            "--quiet", "--out", str(out),
            "--mix", "beam:1,range:5.0", "--arrival", "poisson",
            "--rate", "100",
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["meta"]["mix"] == "beam:1+range:5"
        assert payload["meta"]["arrival"]["model"] == "poisson"
        assert "multimap" in payload

    def test_rejects_bad_mix(self):
        from repro.bench.cli import main

        with pytest.raises(SystemExit):
            main(["traffic", "--mix", "diagonal:3"])
