"""Registry behaviour: lookups, helpful errors, duplicate protection."""

import pytest

from repro.api.registry import (
    DRIVES,
    LAYOUTS,
    Registry,
    build_mapper,
    drive_names,
    get_drive,
    get_layout,
    layout_names,
    register_drive,
    register_layout,
)
from repro.core.multimap import MultiMapMapper
from repro.disk.models import DiskModel
from repro.errors import RegistryError
from repro.lvm.volume import LogicalVolume
from repro.mappings import NaiveMapper


class TestPopulation:
    def test_all_paper_layouts_registered(self):
        assert set(layout_names()) >= {
            "naive", "zorder", "hilbert", "gray", "multimap"
        }

    def test_paper_drives_registered(self):
        assert set(drive_names()) >= {"atlas10k3", "cheetah36es", "toy"}

    def test_layout_entries_carry_classes(self):
        assert get_layout("naive").cls is NaiveMapper
        assert get_layout("multimap").cls is MultiMapMapper
        assert get_layout("multimap").wiring == "volume"
        assert get_layout("naive").wiring == "extent"

    def test_drive_factories_build_models(self):
        model = get_drive("atlas10k3").factory()
        assert isinstance(model, DiskModel)
        assert "Atlas" in model.name

    def test_entries_have_descriptions(self):
        for name in layout_names():
            assert get_layout(name).description

    def test_dunder_helpers(self):
        assert "multimap" in LAYOUTS
        assert "atlas10k3" in DRIVES
        assert len(LAYOUTS) >= 5
        assert list(iter(LAYOUTS)) == sorted(list(iter(LAYOUTS)))


class TestErrors:
    def test_unknown_layout_lists_valid_keys(self):
        with pytest.raises(RegistryError) as exc:
            get_layout("bogus")
        msg = str(exc.value)
        assert "bogus" in msg
        for name in layout_names():
            assert name in msg

    def test_unknown_drive_lists_valid_keys(self):
        with pytest.raises(RegistryError) as exc:
            get_drive("floppy")
        msg = str(exc.value)
        assert "floppy" in msg
        for name in drive_names():
            assert name in msg

    def test_duplicate_layout_registration_raises(self):
        class Impostor:
            """Not the registered naive mapper."""

        with pytest.raises(RegistryError, match="already registered"):
            register_layout("naive")(Impostor)

    def test_duplicate_drive_registration_raises(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_drive("atlas10k3")(lambda: None)

    def test_bad_wiring_rejected(self):
        with pytest.raises(RegistryError):
            register_layout("x", wiring="telepathy")

    def test_empty_name_rejected(self):
        reg = Registry("thing")
        with pytest.raises(RegistryError):
            reg.add("", object())


class TestCollisionBeforeFirstLookup:
    def test_user_collision_fails_at_decorator_without_poisoning(self):
        """In a fresh process, a third-party registration colliding with a
        builtin must fail at its own decorator, leaving the registries
        usable for every other name."""
        import os
        import subprocess
        import sys

        import repro

        code = (
            "from repro.api.registry import register_layout, get_layout\n"
            "from repro.errors import RegistryError\n"
            "try:\n"
            "    @register_layout('multimap')\n"
            "    class Mine: pass\n"
            "except RegistryError as e:\n"
            "    assert 'already registered' in str(e), e\n"
            "else:\n"
            "    raise SystemExit('collision not detected')\n"
            "assert get_layout('naive').name == 'naive'\n"
        )
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__
        )))
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": src},
        )
        assert proc.returncode == 0, proc.stderr


class TestPopulationRecovery:
    def test_reregistration_of_same_definition_is_idempotent(self):
        """A module re-executing after an interrupted import re-registers
        its entries without tripping the duplicate check."""

        class Fake:
            """Stand-in produced by a re-executed defining module."""

        Fake.__module__ = NaiveMapper.__module__
        Fake.__qualname__ = NaiveMapper.__qualname__
        register_layout("naive")(Fake)
        try:
            assert get_layout("naive").cls is Fake
        finally:
            register_layout("naive")(NaiveMapper)  # restore, same path
        assert get_layout("naive").cls is NaiveMapper

    def test_population_retries_after_failed_attempt(self):
        """A failed first attempt resets the flag; the next lookup
        repopulates instead of reporting empty registries."""
        from repro.api import registry as regmod

        regmod._populated = False  # as the except path leaves it
        assert set(layout_names()) >= {"naive", "multimap"}
        assert regmod._populated is True


class TestFreshRegistry:
    def test_independent_of_globals(self):
        reg = Registry("gadget")
        reg.add("a", 1)
        assert reg.get("a") == 1
        with pytest.raises(RegistryError):
            reg.add("a", 2)


class TestBuildMapper:
    def test_accepts_name_or_entry(self, small_model):
        dims = (8, 4, 4)
        by_name = build_mapper(
            "naive", dims, LogicalVolume([small_model], depth=16)
        )
        by_entry = build_mapper(
            get_layout("naive"), dims,
            LogicalVolume([small_model], depth=16),
        )
        assert by_name.extent == by_entry.extent

    def test_unknown_name_raises(self, small_model):
        with pytest.raises(RegistryError):
            build_mapper(
                "bogus", (4, 4), LogicalVolume([small_model], depth=16)
            )
