"""Dataset façade: hand-wired parity, fluent batches, seeding, updates."""

import numpy as np
import pytest

from repro.api import Dataset
from repro.api.registry import layout_names
from repro.datasets import build_chunk_mappers
from repro.errors import DatasetError, QueryError, RegistryError
from repro.query import BeamQuery, RangeQuery, StorageManager

DIMS = (20, 10, 8)
DEPTH = 16


def hand_wired(small_model, name):
    return build_chunk_mappers(
        DIMS, lambda: small_model, depth=DEPTH, which=(name,)
    )[name]


class TestParity:
    """A Dataset-built stack must match the hand-wired idiom bit for bit."""

    @pytest.mark.parametrize("name", sorted(layout_names()))
    def test_request_plans_identical(self, small_model, name):
        mapper, _volume = hand_wired(small_model, name)
        ds = Dataset.create(DIMS, layout=name, drive=small_model,
                            depth=DEPTH)
        for hand_plan, ds_plan in (
            (mapper.beam_plan(1, (0, 3, 0)),
             ds.mapper.beam_plan(1, (0, 3, 0))),
            (mapper.beam_plan(0, (0, 7, 2)),
             ds.mapper.beam_plan(0, (0, 7, 2))),
            (mapper.range_plan((1, 2, 0), (9, 6, 5)),
             ds.mapper.range_plan((1, 2, 0), (9, 6, 5))),
        ):
            assert np.array_equal(hand_plan.starts, ds_plan.starts)
            assert np.array_equal(hand_plan.lengths, ds_plan.lengths)
            assert hand_plan.policy == ds_plan.policy
            assert hand_plan.merge_gap == ds_plan.merge_gap

    @pytest.mark.parametrize("name", sorted(layout_names()))
    def test_query_timings_identical(self, small_model, name):
        mapper, volume = hand_wired(small_model, name)
        sm = StorageManager(volume)
        ds = Dataset.create(DIMS, layout=name, drive=small_model,
                            depth=DEPTH)

        hand = sm.beam(mapper, 1, (0, 3, 0),
                       rng=np.random.default_rng(5))
        via_ds = ds.beam(1, fixed=(0, 3, 0)).run(
            rng=np.random.default_rng(5)
        ).results[0]
        assert hand == via_ds

        hand = sm.range(mapper, (0, 0, 0), (6, 6, 6),
                        rng=np.random.default_rng(9))
        via_ds = ds.range((0, 0, 0), (6, 6, 6)).run(
            rng=np.random.default_rng(9)
        ).results[0]
        assert hand == via_ds

    def test_random_stream_matches_hand_loop(self, small_model):
        """Lazy batch entries interleave generation and execution exactly
        like the hand-wired ``for q in (random_beam(...) ...)`` idiom."""
        from repro.query import random_beam

        mapper, volume = hand_wired(small_model, "multimap")
        sm = StorageManager(volume)
        rng = np.random.default_rng(42)
        hand = [
            sm.beam(mapper, q.axis, q.fixed, rng=rng).total_ms
            for q in (random_beam(DIMS, 1, rng) for _ in range(4))
        ]

        ds = Dataset.create(DIMS, layout="multimap", drive=small_model,
                            depth=DEPTH)
        report = ds.random_beams(axis=1, n=4).run(
            rng=np.random.default_rng(42)
        )
        assert hand == [r.total_ms for r in report.results]


class TestCreate:
    def test_unknown_layout_raises(self, small_model):
        with pytest.raises(RegistryError, match="multimap"):
            Dataset.create(DIMS, layout="bogus", drive=small_model)

    def test_unknown_drive_raises(self):
        with pytest.raises(RegistryError, match="atlas10k3"):
            Dataset.create(DIMS, drive="bogus")

    def test_bad_drive_type_raises(self):
        with pytest.raises(DatasetError):
            Dataset.create(DIMS, drive=123)

    def test_registered_drive_name(self):
        ds = Dataset.create((8, 4, 4), layout="naive", drive="toy",
                            depth=4)
        assert ds.drive_name == "toy"
        assert ds.n_cells == 128

    def test_default_depth_adapts_to_drive(self, small_model):
        # depth=None uses each drive's native settle region: every
        # registered drive (even the tiny toy disk) works with defaults.
        ds = Dataset.create((5, 5, 5), layout="multimap", drive="toy")
        assert ds.volume.depth(0) == 9
        ds = Dataset.create(DIMS, layout="naive", drive=small_model)
        assert ds.volume.depth(0) == 16
        ds = Dataset.create((8, 4, 4), layout="naive", drive="atlas10k3")
        assert ds.volume.depth(0) == 128  # the paper's pinned D

    def test_layout_opts_forwarded(self, small_model):
        ds = Dataset.create(DIMS, layout="multimap", drive=small_model,
                            depth=DEPTH, strategy="volume")
        assert ds.layout_opts == {"strategy": "volume"}
        assert ds.mapper.name == "multimap"

    def test_describe_is_json_friendly(self, small_model):
        import json

        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH, seed=3)
        desc = json.loads(json.dumps(ds.describe()))
        assert desc["layout"] == "naive"
        assert desc["seed"] == 3
        assert desc["n_cells"] == int(np.prod(DIMS))


class TestWithLayout:
    def test_clone_keeps_store_options(self, small_model):
        ds = Dataset.create(DIMS, layout="multimap", drive=small_model,
                            depth=DEPTH).configure_store(
            points_per_cell=8, fill_factor=0.5)
        clone = ds.with_layout("naive")
        assert clone.store.points_per_cell == 8
        assert clone.store.fill_factor == 0.5

    def test_clone_keeps_shape_drive_seed(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH, seed=11)
        clone = ds.with_layout("hilbert")
        assert clone.shape == ds.shape
        assert clone.drive_name == ds.drive_name
        assert clone.seed == ds.seed
        assert clone.layout == "hilbert"
        assert clone.volume is not ds.volume

    def test_clone_matches_fresh_create(self, small_model):
        base = Dataset.create(DIMS, layout="naive", drive=small_model,
                              depth=DEPTH)
        clone = base.with_layout("zorder")
        fresh = Dataset.create(DIMS, layout="zorder", drive=small_model,
                               depth=DEPTH)
        plan_a = clone.mapper.range_plan((0, 0, 0), (5, 5, 5))
        plan_b = fresh.mapper.range_plan((0, 0, 0), (5, 5, 5))
        assert np.array_equal(plan_a.starts, plan_b.starts)
        assert np.array_equal(plan_a.lengths, plan_b.lengths)


class TestSeeding:
    def test_same_seed_same_report(self, small_model):
        def run():
            ds = Dataset.create(DIMS, layout="multimap",
                                drive=small_model, depth=DEPTH, seed=77)
            return ds.random_beams(1, n=3).range_selectivity(5.0).run()

        a, b = run(), run()
        assert [r.total_ms for r in a.results] == \
            [r.total_ms for r in b.results]
        assert [r.query for r in a.records] == [r.query for r in b.records]

    def test_successive_runs_get_independent_streams(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH, seed=77)
        a = ds.random_beams(1, n=3).run()
        b = ds.random_beams(1, n=3).run()
        assert [r.query for r in a.records] != [r.query for r in b.records]

    def test_layout_clone_sees_same_streams(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH, seed=5)
        clone = ds.with_layout("naive")
        a = ds.random_beams(2, n=4).run()
        b = clone.random_beams(2, n=4).run()
        assert [r.query for r in a.records] == [r.query for r in b.records]
        assert [r.result for r in a.records] == \
            [r.result for r in b.records]

    def test_spawned_children_follow_seedsequence(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH, seed=123)
        expected = np.random.default_rng(
            np.random.SeedSequence(123).spawn(1)[0]
        )
        assert ds.rng().integers(1 << 30) == expected.integers(1 << 30)


class TestFluentBatches:
    def test_chaining_accumulates(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH, seed=1)
        batch = ds.beam(0, fixed=(0, 1, 1)).range((0, 0, 0), (4, 4, 4))
        batch.random_beams(1, n=2).range_selectivity(10.0)
        assert len(batch) == 5
        report = batch.run()
        assert len(report) == 5

    def test_repeats_redraw_lazy_entries(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH, seed=2)
        report = ds.beam(1).run(repeats=3)
        assert len(report) == 3
        queries = [r.query for r in report.records]
        assert len(set(queries)) > 1  # random positions differ per repeat
        assert [r.repeat for r in report.records] == [0, 1, 2]

    def test_run_accepts_workload_objects(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH, seed=3)
        queries = [
            BeamQuery(axis=0, fixed=(0, 2, 2)),
            RangeQuery((0, 0, 0), (5, 5, 5)),
        ]
        report = ds.run(queries)
        assert len(report) == 2
        assert report.records[0].query == queries[0]
        assert report.records[1].query == queries[1]

    def test_run_accepts_batch(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH, seed=3)
        report = ds.run(ds.beam(0, fixed=(0, 1, 1)), repeats=2)
        assert len(report) == 2

    def test_run_rebinds_foreign_batch(self, small_model):
        base = Dataset.create(DIMS, layout="naive", drive=small_model,
                              depth=DEPTH, seed=4)
        mm = base.with_layout("multimap")
        batch = base.beam(1, fixed=(0, 3, 0))
        rep = mm.run(batch)
        assert rep.layout == "multimap"
        assert rep.results[0].mapper == "multimap"
        # the original batch still runs on its own dataset
        assert base.run(batch).results[0].mapper == "naive"

    def test_rebind_rejects_shape_mismatch(self, small_model):
        a = Dataset.create(DIMS, layout="naive", drive=small_model,
                           depth=DEPTH)
        b = Dataset.create((10, 10, 4), layout="naive", drive=small_model,
                           depth=DEPTH)
        with pytest.raises(QueryError, match="shape"):
            b.run(a.beam(0, fixed=(0, 1, 1)))

    def test_random_beam_keeps_span(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH, seed=9)
        rep = ds.beam(0, lo=2, hi=7).run()
        q = rep.records[0].query
        assert (q.lo, q.hi) == (2, 7)
        assert rep.results[0].n_cells == 5

    def test_run_honours_batch_repeats(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH, seed=3)
        batch = ds.beam(0, fixed=(0, 1, 1)).repeats(3)
        assert len(ds.run(batch)) == 3          # batch setting wins
        assert len(ds.run(batch, repeats=2)) == 2  # explicit overrides

    def test_validation(self, small_model):
        ds = Dataset.create(DIMS, layout="naive", drive=small_model,
                            depth=DEPTH)
        with pytest.raises(QueryError):
            ds.random_beams(0, n=0)
        with pytest.raises(QueryError):
            ds.range_selectivity(0)
        with pytest.raises(QueryError):
            ds.query().repeats(0)
        with pytest.raises(QueryError):
            ds.run(["not a query"])

    def test_report_metadata(self, small_model):
        ds = Dataset.create(DIMS, layout="hilbert", drive=small_model,
                            depth=DEPTH, seed=4)
        report = ds.beam(0, fixed=(0, 1, 1)).run()
        assert report.layout == "hilbert"
        assert report.drive == ds.drive_name
        assert report.shape == DIMS
        assert report.meta["seed"] == 4


class TestUpdates:
    def test_insert_delete_through_facade(self, small_model):
        ds = Dataset.create((8, 4, 4), layout="multimap",
                            drive=small_model, depth=DEPTH, seed=6)
        ds.configure_store(points_per_cell=4, fill_factor=0.5)
        assert ds.insert((1, 1, 1), 2) == "cell"
        assert ds.insert((1, 1, 1), 10) == "overflow"
        stats = ds.store_stats()
        assert stats.overflow_pages >= 1
        ds.delete((1, 1, 1), 12)
        assert ds.store_stats().overflow_points == 0

    def test_bulk_load_and_reorganize(self, small_model, rng):
        ds = Dataset.create((8, 4, 4), layout="naive", drive=small_model,
                            depth=DEPTH, seed=6)
        ds.configure_store(points_per_cell=4, fill_factor=0.5)
        coords = np.stack(
            [rng.integers(0, s, size=600) for s in (8, 4, 4)], axis=1
        )
        spilled = ds.bulk_load(coords)
        assert spilled > 0
        if ds.needs_reorganization:
            ds.reorganize()
        assert ds.store_stats().n_points == 600

    def test_read_cells_includes_overflow(self, small_model):
        ds = Dataset.create((8, 4, 4), layout="multimap",
                            drive=small_model, depth=DEPTH, seed=6)
        ds.configure_store(points_per_cell=2)
        ds.insert((2, 2, 2), 7)  # 1 cell + 3 overflow pages
        res = ds.read_cells((2, 2, 2))
        assert res.n_blocks == 4
        assert res.total_ms > 0

    def test_configure_after_use_rejected(self, small_model):
        ds = Dataset.create((8, 4, 4), layout="naive", drive=small_model,
                            depth=DEPTH)
        ds.insert((0, 0, 0))
        with pytest.raises(DatasetError):
            ds.configure_store(points_per_cell=8)


class TestLazyImport:
    def test_top_level_reexports(self):
        import repro

        assert repro.Dataset is Dataset
        assert "Dataset" in repro.__all__
        assert repro.BeamQuery is BeamQuery
        with pytest.raises(AttributeError):
            repro.nonexistent_attribute

    def test_every_declared_export_resolves(self):
        import repro
        import repro.api

        for name in repro.__all__:
            assert getattr(repro, name) is not None
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None

    def test_import_repro_is_cheap(self):
        import os
        import subprocess
        import sys

        import repro

        # a fresh interpreter importing repro must not pull the façade
        code = (
            "import sys; import repro; "
            "assert 'repro.api.dataset' not in sys.modules, "
            "'facade imported eagerly'; "
            "assert 'numpy' not in sys.modules, 'numpy imported eagerly'"
        )
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__
        )))
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": src},
        )
        assert proc.returncode == 0, proc.stderr
