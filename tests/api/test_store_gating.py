"""CellStore gating behind the façade under sharding/replication.

PR 4 gated online updates off sharded datasets; these tests pin the
exact error type and message, and that un-sharding back to 1 member
disk restores update support (a 1-shard dataset's lone chunk mapper is
bit-identical to the full-dataset mapper, the pinned parity guarantee).
"""

import pytest

from repro.api import Dataset
from repro.errors import DatasetError

SHAPE = (24, 12, 12)

GATE_MSG = (
    "online updates (CellStore) are not supported on sharded "
    "datasets; stream writes through Dataset.ingest() instead"
)


def make(small_model, **opts):
    return Dataset.create(SHAPE, layout="multimap", drive=small_model,
                          seed=5, **opts)


class TestShardedGate:
    def test_store_property_raises_dataset_error(self, small_model):
        ds = make(small_model).with_shards(2)
        with pytest.raises(DatasetError) as exc:
            ds.store
        assert str(exc.value) == GATE_MSG

    @pytest.mark.parametrize("op", ["insert", "delete"])
    def test_cell_ops_raise_with_same_message(self, small_model, op):
        ds = make(small_model).with_shards(3)
        with pytest.raises(DatasetError) as exc:
            getattr(ds, op)((0, 0, 0))
        assert str(exc.value) == GATE_MSG

    def test_bulk_load_raises_before_clearing_cache(self, small_model):
        ds = make(small_model).with_shards(2).with_cache(2048)
        ds.random_beams(axis=1, n=3).run()
        occupied = ds.cache.occupancy
        assert occupied > 0
        with pytest.raises(DatasetError) as exc:
            ds.bulk_load([(0, 0, 0)])
        assert str(exc.value) == GATE_MSG
        # the gate fired before the cache was cleared
        assert ds.cache.occupancy == occupied

    def test_one_shard_many_chunks_also_gated(self, small_model):
        """1 member disk but an explicit chunk_shape that tiles the
        dataset into several chunks: chunk 0's mapper does NOT span the
        dataset, so updates must stay gated (a raw chunk mapper would
        crash or mis-map cells outside chunk 0)."""
        ds = make(small_model).with_shards(1, chunk_shape=(24, 12, 4))
        assert ds.n_shards == 1
        assert len(ds.mapper.chunk_mappers) > 1
        with pytest.raises(DatasetError) as exc:
            ds.insert((0, 0, 6))  # a valid cell outside chunk 0
        assert str(exc.value) == GATE_MSG

    def test_replicated_dataset_also_gated(self, small_model):
        ds = make(small_model).with_shards(3).with_replication(2)
        with pytest.raises(DatasetError) as exc:
            ds.store
        assert str(exc.value) == GATE_MSG

    def test_sharding_after_store_still_refused(self, small_model):
        ds = make(small_model)
        ds.insert((1, 2, 3))
        with pytest.raises(DatasetError, match="cannot shard"):
            ds.with_shards(2)


class TestUnshardingRestoresUpdates:
    def test_one_shard_dataset_supports_updates(self, small_model):
        ds = make(small_model).with_shards(1)
        assert ds.insert((1, 2, 3)) == "cell"
        ds.delete((1, 2, 3))
        stats = ds.store_stats()
        assert stats.n_cells == ds.n_cells

    def test_reshard_back_to_one_restores_support(self, small_model):
        ds = make(small_model).with_shards(4)
        with pytest.raises(DatasetError):
            ds.store
        ds.with_shards(1)
        assert ds.n_shards == 1
        assert ds.insert((0, 0, 0)) == "cell"

    def test_one_shard_store_matches_unsharded(self, small_model):
        """The 1-shard store works against the chunk mapper, which is
        placement-identical to the plain mapper."""
        plain = make(small_model)
        one = make(small_model).with_shards(1)
        for ds in (plain, one):
            ds.configure_store(points_per_cell=4, fill_factor=0.5)
            ds.bulk_load([(0, 0, 0), (1, 1, 1)], counts=[2, 2])
            ds.insert((0, 0, 0))
        assert plain.store_stats() == one.store_stats()
        r_p = plain.read_cells([(0, 0, 0)])
        r_o = one.read_cells([(0, 0, 0)])
        assert r_p == r_o

    def test_one_shard_write_invalidates_cache(self, small_model):
        """The write-invalidate path resolves the chunk mapper (the
        ShardedMapper has no cell-level lbns)."""
        ds = make(small_model).with_shards(1).with_cache(2048)
        ds.random_beams(axis=1, n=3).run()
        ds.insert((2, 3, 4))  # must not raise
        ds.reorganize() if ds.needs_reorganization else None
