"""Cross-layer integration tests: the full pipeline on one small disk.

These walk the complete stack — model -> volume -> planner -> mapper ->
storage manager -> drive — and assert the paper's core orderings without
depending on the benchmark package.
"""

import numpy as np
import pytest

from repro.analytic import AnalyticModel, DriveParameters
from repro.core import CellStore, MultiMapMapper
from repro.datasets import build_chunk_mappers
from repro.disk import DiskDrive, extract_profile, synthetic_disk
from repro.lvm import LogicalVolume
from repro.query import StorageManager, random_beam, random_range_cube

DIMS = (122, 26, 20)  # strides deliberately not multiples of T


@pytest.fixture(scope="module")
def model():
    """Mid-size synthetic disk with paper-like proportions."""
    return synthetic_disk(
        "integration",
        rpm=10_000,
        settle_ms=1.2,
        settle_cylinders=16,
        surfaces=2,
        zone_specs=[(400, 180), (400, 150)],
        avg_seek_ms=4.0,
        full_stroke_ms=8.0,
        command_overhead_ms=0.1,
    )


@pytest.fixture(scope="module")
def world(model):
    mappers = build_chunk_mappers(DIMS, lambda: model, depth=32)
    managers = {
        name: StorageManager(volume)
        for name, (mapper, volume) in mappers.items()
    }
    return mappers, managers


def _avg_beam(mapper, sm, axis, runs=4, seed=0):
    rng = np.random.default_rng(seed)
    return float(
        np.mean(
            [
                sm.beam(mapper, axis, q.fixed, rng=rng).ms_per_cell
                for q in (random_beam(DIMS, axis, rng) for _ in range(runs))
            ]
        )
    )


class TestPaperOrderings:
    def test_streaming_hierarchy_dim0(self, world):
        mappers, managers = world
        times = {
            name: _avg_beam(m, managers[name], 0)
            for name, (m, _v) in mappers.items()
        }
        assert times["naive"] < times["zorder"] / 5
        assert times["multimap"] < times["zorder"] / 5

    def test_multimap_wins_nonprimary_beams_overall(self, world):
        mappers, managers = world
        combined = {
            name: _avg_beam(m, managers[name], 1)
            + _avg_beam(m, managers[name], 2)
            for name, (m, _v) in mappers.items()
        }
        assert combined["multimap"] == min(combined.values())
        assert combined["multimap"] < combined["naive"] * 0.75

    def test_low_selectivity_range_ordering(self, world):
        mappers, managers = world
        totals = {}
        for name, (m, _v) in mappers.items():
            rng = np.random.default_rng(5)
            totals[name] = float(
                np.mean(
                    [
                        managers[name].range(m, q.lo, q.hi, rng=rng).total_ms
                        for q in (
                            random_range_cube(DIMS, 1.0, rng)
                            for _ in range(3)
                        )
                    ]
                )
            )
        # naive is never the best at low selectivity
        assert min(totals, key=totals.get) != "naive"

    def test_full_scan_convergence(self, world):
        mappers, managers = world
        totals = {}
        for name, (m, _v) in mappers.items():
            rng = np.random.default_rng(5)
            totals[name] = managers[name].range(
                m, (0, 0, 0), DIMS, rng=rng
            ).total_ms
        assert totals["zorder"] == pytest.approx(totals["naive"], rel=0.05)
        assert totals["hilbert"] == pytest.approx(totals["naive"], rel=0.05)
        assert totals["multimap"] < totals["naive"] * 1.4


class TestCharacterisationToMapping:
    def test_extracted_profile_drives_a_working_mapper(self, model):
        """End-to-end §3 story: measure the drive, use the measured D."""
        profile = extract_profile(DiskDrive(model), samples=2)
        assert profile.adjacency_depth == 32
        vol = LogicalVolume([model], depth=profile.adjacency_depth)
        mm = MultiMapMapper(DIMS, vol)
        assert int(np.prod(mm.K[1:-1])) <= profile.adjacency_depth

    def test_analytic_model_consistent_with_world(self, model, world):
        mappers, managers = world
        params = DriveParameters.from_model(model, depth=32)
        analytic = AnalyticModel(params)
        measured = _avg_beam(
            mappers["multimap"][0], managers["multimap"], 1
        )
        predicted = analytic.multimap_beam_ms(DIMS, 1, mappers["multimap"][0].K)
        assert predicted / DIMS[1] == pytest.approx(measured, rel=0.5)


class TestUpdatesOnTopOfQueries:
    def test_store_and_query_coexist(self, model):
        vol = LogicalVolume([model], depth=32)
        mm = MultiMapMapper((40, 10, 8), vol)
        store = CellStore(mm, vol, points_per_cell=8, fill_factor=0.5)
        rng = np.random.default_rng(0)
        coords = np.stack(
            [rng.integers(0, s, size=2000) for s in (40, 10, 8)], axis=1
        )
        store.bulk_load(coords)
        plan = store.read_plan(coords[:50])
        drive = vol.drive(0)
        res = drive.service_runs(
            plan.starts, plan.lengths, policy="sorted"
        )
        assert res.total_ms > 0
        assert res.n_blocks >= np.unique(
            mm.lbns(coords[:50])
        ).size
