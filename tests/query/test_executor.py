"""Tests for the storage manager (query execution end to end)."""

import numpy as np
import pytest

from repro.core import MultiMapMapper
from repro.errors import QueryError
from repro.lvm import LogicalVolume
from repro.mappings import NaiveMapper, ZOrderMapper
from repro.query import (
    BeamQuery,
    RangeQuery,
    StorageManager,
    random_range_cube,
)


@pytest.fixture()
def setup(small_model):
    vol = LogicalVolume([small_model], depth=16)
    dims = (40, 12, 10)
    naive = NaiveMapper(dims, vol.allocate_blocks(0, int(np.prod(dims))))
    sm = StorageManager(vol)
    return vol, naive, sm, dims


class TestExecution:
    def test_beam_result_counts(self, setup):
        vol, naive, sm, dims = setup
        res = sm.beam(naive, 0, (0, 3, 4))
        assert res.n_cells == 40
        assert res.n_blocks == 40
        assert res.total_ms > 0
        assert res.mapper == "naive"

    def test_range_result_counts(self, setup):
        vol, naive, sm, dims = setup
        res = sm.range(naive, (0, 0, 0), (10, 5, 5))
        assert res.n_cells == 250
        assert res.n_blocks >= 250  # gap coalescing may read extra

    def test_breakdown_sums(self, setup):
        vol, naive, sm, dims = setup
        res = sm.range(naive, (0, 0, 0), (10, 5, 5))
        parts = res.seek_ms + res.rotation_ms + res.transfer_ms + res.switch_ms
        # remainder is per-command overhead
        assert parts <= res.total_ms + 1e-9

    def test_ms_per_cell(self, setup):
        vol, naive, sm, dims = setup
        res = sm.beam(naive, 1, (5, 0, 5))
        assert res.ms_per_cell == pytest.approx(res.total_ms / 12)

    def test_run_query_dispatch_beam(self, setup):
        vol, naive, sm, dims = setup
        q = BeamQuery(axis=0, fixed=(0, 1, 1))
        res = sm.run_query(naive, q)
        assert res.n_cells == 40

    def test_run_query_dispatch_range(self, setup):
        vol, naive, sm, dims = setup
        q = RangeQuery(lo=(0, 0, 0), hi=(5, 5, 5))
        res = sm.run_query(naive, q)
        assert res.n_cells == 125

    def test_run_query_rejects_unknown(self, setup):
        vol, naive, sm, dims = setup
        with pytest.raises(QueryError):
            sm.run_query(naive, object())

    def test_rng_randomises_start_position(self, setup, small_model):
        vol, naive, sm, dims = setup
        r1 = sm.beam(naive, 1, (5, 0, 5), rng=np.random.default_rng(1))
        r2 = sm.beam(naive, 1, (5, 0, 5), rng=np.random.default_rng(99))
        # different head positions -> different initial positioning
        assert r1.total_ms != pytest.approx(r2.total_ms, abs=1e-9)

    def test_deterministic_given_seed(self, small_model):
        def run():
            vol = LogicalVolume([small_model], depth=16)
            m = NaiveMapper((40, 12, 10), vol.allocate_blocks(0, 4800))
            sm = StorageManager(vol)
            return sm.range(
                m, (0, 0, 0), (20, 6, 5), rng=np.random.default_rng(7)
            ).total_ms

        assert run() == pytest.approx(run())


class TestPolicyHandling:
    def test_multimap_range_uses_sptf(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        mm = MultiMapMapper((40, 12, 10), vol)
        sm = StorageManager(vol)
        res = sm.range(mm, (0, 0, 0), (30, 10, 8))
        assert res.policy == "sptf"

    def test_sptf_clamp_on_large_batches(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        mm = MultiMapMapper((40, 12, 10), vol)
        sm = StorageManager(vol, sptf_run_limit=3)
        res = sm.range(mm, (0, 0, 0), (30, 10, 8))
        assert res.policy == "sorted"

    def test_beam_plans_never_merge_gaps(self, small_model):
        """Beams must fetch exactly their blocks (paper issues per-block
        requests); n_blocks must equal the beam length."""
        vol = LogicalVolume([small_model], depth=16)
        m = ZOrderMapper((16, 16, 16), vol.allocate_blocks(0, 4096))
        sm = StorageManager(vol, coalesce_gap_blocks=1000)
        res = sm.beam(m, 1, (3, 0, 9))
        assert res.n_blocks == 16

    def test_range_plans_merge_small_gaps(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        m = NaiveMapper((10, 50, 1), vol.allocate_blocks(0, 500))
        # rows of 5 with gap 5: generous threshold merges all rows
        sm = StorageManager(vol, coalesce_gap_blocks=6)
        res = sm.range(m, (0, 0, 0), (5, 50, 1))
        assert res.n_runs == 1

    def test_zero_gap_threshold(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        m = NaiveMapper((10, 50, 1), vol.allocate_blocks(0, 500))
        sm = StorageManager(vol, coalesce_gap_blocks=0)
        res = sm.range(m, (0, 0, 0), (5, 50, 1))
        assert res.n_runs == 50


class TestRelativePerformance:
    """End-to-end sanity of the paper's core comparisons on a small disk."""

    def test_multimap_beats_naive_on_nonprimary_beams(self, small_model):
        dims = (100, 16, 12)
        voln = LogicalVolume([small_model], depth=16)
        naive = NaiveMapper(dims, voln.allocate_blocks(0, int(np.prod(dims))))
        smn = StorageManager(voln)
        volm = LogicalVolume([small_model], depth=16)
        mm = MultiMapMapper(dims, volm, strategy="volume")
        smm = StorageManager(volm)
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        t_naive = sum(
            smn.beam(naive, 2, (5, 5, 0), rng=rng1).total_ms
            for _ in range(3)
        )
        t_mm = sum(
            smm.beam(mm, 2, (5, 5, 0), rng=rng2).total_ms for _ in range(3)
        )
        assert t_mm < t_naive

    def test_streaming_equal_for_naive_and_multimap(self, small_model):
        dims = (100, 16, 12)
        voln = LogicalVolume([small_model], depth=16)
        naive = NaiveMapper(dims, voln.allocate_blocks(0, int(np.prod(dims))))
        volm = LogicalVolume([small_model], depth=16)
        mm = MultiMapMapper(dims, volm)
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        t_naive = StorageManager(voln).beam(
            naive, 0, (0, 5, 5), rng=rng1
        ).total_ms
        t_mm = StorageManager(volm).beam(mm, 0, (0, 5, 5), rng=rng2).total_ms
        assert t_mm < t_naive * 1.8
