"""Tests for batch preparation: coalescing, merging, policy clamping."""

import numpy as np
import pytest

from repro.mappings.base import RequestPlan
from repro.query import coalesce_lbns, effective_policy, merge_plan_runs


def plan(starts, lengths, policy="sorted", merge_gap=None):
    return RequestPlan(
        np.asarray(starts, dtype=np.int64),
        np.asarray(lengths, dtype=np.int64),
        policy=policy,
        merge_gap=merge_gap,
    )


class TestCoalesceLbns:
    def test_sorts_and_merges(self):
        s, l = coalesce_lbns(np.array([5, 3, 4, 10]))
        assert s.tolist() == [3, 10]
        assert l.tolist() == [3, 1]

    def test_deduplicates(self):
        s, l = coalesce_lbns(np.array([1, 1, 2, 2]))
        assert s.tolist() == [1]
        assert l.tolist() == [2]


class TestMergePlanRuns:
    def test_touching_runs_merge(self):
        p = merge_plan_runs(plan([0, 5], [5, 5]))
        assert p.n_runs == 1
        assert p.lengths[0] == 10

    def test_gap_blocks_merge_within_threshold(self):
        p = merge_plan_runs(plan([0, 8], [4, 4]), max_gap=4)
        assert p.n_runs == 1
        # the merged run reads through the hole
        assert p.lengths[0] == 12

    def test_gap_beyond_threshold_stays_split(self):
        p = merge_plan_runs(plan([0, 8], [4, 4]), max_gap=3)
        assert p.n_runs == 2

    def test_unsorted_input_is_sorted(self):
        p = merge_plan_runs(plan([100, 0], [5, 5]))
        assert p.starts.tolist() == [0, 100]

    def test_idempotent(self):
        p1 = merge_plan_runs(plan([0, 5, 20], [5, 5, 3]), max_gap=2)
        p2 = merge_plan_runs(p1, max_gap=2)
        assert p1.starts.tolist() == p2.starts.tolist()
        assert p1.lengths.tolist() == p2.lengths.tolist()

    def test_overlapping_runs_safe(self):
        p = merge_plan_runs(plan([0, 2], [5, 2]))
        assert p.n_runs == 1
        assert p.lengths[0] == 5

    def test_preserves_policy_and_gap(self):
        p = merge_plan_runs(plan([0, 5], [2, 2], "sptf", 7), max_gap=0)
        assert p.policy == "sptf"
        assert p.merge_gap == 7

    def test_single_run_passthrough(self):
        p = plan([4], [4])
        assert merge_plan_runs(p) is p


class TestEffectivePolicy:
    def test_small_sptf_stays(self):
        p = plan(np.arange(10), np.ones(10), "sptf")
        assert effective_policy(p, limit=100) == "sptf"

    def test_large_sptf_clamps(self):
        p = plan(np.arange(200), np.ones(200), "sptf")
        assert effective_policy(p, limit=100) == "sorted"

    def test_sorted_never_clamps(self):
        p = plan(np.arange(200), np.ones(200), "sorted")
        assert effective_policy(p, limit=100) == "sorted"

    def test_fifo_untouched(self):
        p = plan(np.arange(200), np.ones(200), "fifo")
        assert effective_policy(p, limit=100) == "fifo"
