"""Tests for query definitions and generators."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query import (
    BeamQuery,
    RangeQuery,
    random_beam,
    random_range_cube,
    range_for_selectivity,
)


class TestBeamQuery:
    def test_n_cells_full(self):
        q = BeamQuery(axis=1, fixed=(3, 0, 2))
        assert q.n_cells((10, 20, 30)) == 20

    def test_n_cells_partial(self):
        q = BeamQuery(axis=0, fixed=(0, 1, 1), lo=5, hi=9)
        assert q.n_cells((10, 20, 30)) == 4


class TestRangeQuery:
    def test_n_cells(self):
        q = RangeQuery(lo=(0, 0), hi=(4, 5))
        assert q.n_cells() == 20

    def test_shape(self):
        q = RangeQuery(lo=(1, 2, 3), hi=(4, 4, 9))
        assert q.shape == (3, 2, 6)


class TestRandomBeam:
    def test_fixed_coords_in_bounds(self, rng):
        dims = (10, 20, 30)
        for axis in range(3):
            q = random_beam(dims, axis, rng)
            for d, v in enumerate(q.fixed):
                if d != axis:
                    assert 0 <= v < dims[d]

    def test_bad_axis(self, rng):
        with pytest.raises(QueryError):
            random_beam((10, 10), 2, rng)

    def test_reproducible(self):
        a = random_beam((10, 20), 0, np.random.default_rng(5))
        b = random_beam((10, 20), 0, np.random.default_rng(5))
        assert a == b


class TestSelectivityShapes:
    def test_cube_shape_for_cubic_dims(self):
        assert range_for_selectivity((100, 100, 100), 100) == (100, 100, 100)

    def test_one_percent_of_259(self):
        # the paper's 1% query on 259^3 is a 56-cell cube
        assert range_for_selectivity((259, 259, 259), 1.0) == (56, 56, 56)

    def test_redistribution_on_flat_dims(self):
        shape = range_for_selectivity((1000, 4, 4), 100)
        assert shape == (1000, 4, 4)

    def test_partial_redistribution(self):
        shape = range_for_selectivity((1000, 4, 4), 50)
        assert shape[1] == 4 and shape[2] == 4
        assert 480 <= shape[0] <= 520

    def test_tiny_selectivity_min_one(self):
        shape = range_for_selectivity((10, 10), 0.01)
        assert all(w >= 1 for w in shape)

    def test_rejects_bad_selectivity(self):
        with pytest.raises(QueryError):
            range_for_selectivity((10, 10), 0)
        with pytest.raises(QueryError):
            range_for_selectivity((10, 10), 101)

    def test_selectivity_accuracy(self):
        dims = (200, 200, 200)
        for pct in (1, 5, 25):
            shape = range_for_selectivity(dims, pct)
            vol = np.prod(shape) / np.prod(dims) * 100
            assert vol == pytest.approx(pct, rel=0.15)


class TestRandomRangeCube:
    def test_box_within_bounds(self, rng):
        dims = (50, 60, 70)
        for _ in range(20):
            q = random_range_cube(dims, 5.0, rng)
            for d in range(3):
                assert 0 <= q.lo[d] < q.hi[d] <= dims[d]

    def test_full_selectivity_covers_everything(self, rng):
        dims = (30, 40, 50)
        q = random_range_cube(dims, 100.0, rng)
        assert q.lo == (0, 0, 0)
        assert q.hi == dims
