"""Executor behaviour with multi-block cells and partial beams."""

import numpy as np
import pytest

from repro.core import MultiMapMapper
from repro.lvm import LogicalVolume
from repro.mappings import NaiveMapper
from repro.query import BeamQuery, StorageManager


@pytest.fixture()
def volume(small_model):
    return LogicalVolume([small_model], depth=16)


class TestMultiBlockCells:
    def test_naive_cell_blocks_counts(self, volume):
        dims = (20, 10, 8)
        n = int(np.prod(dims))
        m = NaiveMapper(dims, volume.allocate_blocks(0, n * 2), cell_blocks=2)
        sm = StorageManager(volume)
        res = sm.beam(m, 0, (0, 3, 4))
        assert res.n_cells == 20
        assert res.n_blocks == 40

    def test_multimap_cell_blocks_counts(self, volume):
        m = MultiMapMapper((20, 10, 8), volume, cell_blocks=3)
        sm = StorageManager(volume)
        res = sm.range(m, (0, 0, 0), (10, 5, 4))
        assert res.n_cells == 200
        assert res.n_blocks >= 600

    def test_larger_cells_cost_more_transfer(self, volume, small_model):
        sm = StorageManager(volume)
        m1 = MultiMapMapper((20, 10, 8), volume, strategy="volume")
        vol2 = LogicalVolume([small_model], depth=16)
        m3 = MultiMapMapper(
            (20, 10, 8), vol2, cell_blocks=4, strategy="volume"
        )
        sm2 = StorageManager(vol2)
        rng1, rng2 = np.random.default_rng(4), np.random.default_rng(4)
        t1 = sm.range(m1, (0, 0, 0), (20, 10, 8), rng=rng1).total_ms
        t4 = sm2.range(m3, (0, 0, 0), (20, 10, 8), rng=rng2).total_ms
        assert t4 > t1 * 2


class TestPartialBeams:
    def test_beam_with_bounds(self, volume):
        dims = (30, 10, 8)
        m = NaiveMapper(dims, volume.allocate_blocks(0, int(np.prod(dims))))
        sm = StorageManager(volume)
        res = sm.beam(m, 0, (0, 2, 2), lo=5, hi=25)
        assert res.n_cells == 20
        assert res.n_blocks == 20

    def test_run_query_beam_with_bounds(self, volume):
        dims = (30, 10, 8)
        m = NaiveMapper(dims, volume.allocate_blocks(0, int(np.prod(dims))))
        sm = StorageManager(volume)
        q = BeamQuery(axis=1, fixed=(4, 0, 3), lo=2, hi=9)
        res = sm.run_query(m, q)
        assert res.n_cells == 7

    def test_multimap_partial_beam_crossing_cubes(self, volume):
        m = MultiMapMapper((40, 12, 10), volume)
        sm = StorageManager(volume)
        res = sm.beam(m, 1, (7, 0, 3), lo=1, hi=12)
        assert res.n_cells == 11
        assert res.n_blocks == 11
