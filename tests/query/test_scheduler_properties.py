"""Property-based tests (hypothesis) for the batch transforms.

The storage manager trusts :func:`coalesce_lbns` /
:func:`merge_plan_runs` / :func:`slice_plan` to reshape batches without
ever losing or inventing work; these properties pin that for random
plans and gaps:

* ``coalesce_lbns``: output runs are sorted, disjoint, and cover
  exactly the (de-duplicated) input LBN set;
* ``merge_plan_runs``: no input LBN is dropped or duplicated, merged
  runs are sorted and disjoint, and any extra blocks read lie only in
  holes of at most ``max_gap`` between covered blocks;
* ``slice_plan``: concatenating the slices reproduces the plan exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mappings.base import RequestPlan
from repro.query.scheduler import coalesce_lbns, merge_plan_runs, slice_plan

lbn_arrays = st.lists(
    st.integers(min_value=0, max_value=5_000), min_size=0, max_size=300
).map(lambda xs: np.asarray(xs, dtype=np.int64))


@st.composite
def plans(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    starts = draw(st.lists(
        st.integers(min_value=0, max_value=10_000),
        min_size=n, max_size=n,
    ))
    lengths = draw(st.lists(
        st.integers(min_value=1, max_value=50),
        min_size=n, max_size=n,
    ))
    return RequestPlan(
        np.asarray(starts, dtype=np.int64),
        np.asarray(lengths, dtype=np.int64),
    )


def covered(plan: RequestPlan) -> set[int]:
    out: set[int] = set()
    for s, ln in zip(plan.starts.tolist(), plan.lengths.tolist()):
        out.update(range(s, s + ln))
    return out


def assert_sorted_disjoint(plan: RequestPlan) -> None:
    starts = plan.starts
    ends = plan.starts + plan.lengths
    assert (np.diff(starts) > 0).all()
    assert (starts[1:] >= ends[:-1]).all()


class TestCoalesceLbns:
    @given(lbn_arrays)
    @settings(max_examples=200, deadline=None)
    def test_exact_cover_sorted_disjoint(self, lbns):
        starts, lengths = coalesce_lbns(lbns)
        assert starts.shape == lengths.shape
        if starts.size:
            assert (lengths >= 1).all()
            # strictly separated: touching runs must have been merged
            assert (starts[1:] > starts[:-1] + lengths[:-1]).all()
        out = set()
        for s, ln in zip(starts.tolist(), lengths.tolist()):
            out.update(range(s, s + ln))
        assert out == set(lbns.tolist())

    @given(lbn_arrays)
    @settings(max_examples=50, deadline=None)
    def test_duplicates_are_collapsed(self, lbns):
        doubled = np.concatenate([lbns, lbns])
        s1, l1 = coalesce_lbns(lbns)
        s2, l2 = coalesce_lbns(doubled)
        assert np.array_equal(s1, s2) and np.array_equal(l1, l2)


class TestMergePlanRuns:
    @given(plans(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=200, deadline=None)
    def test_never_drops_or_duplicates(self, plan, max_gap):
        merged = merge_plan_runs(plan, max_gap)
        before = covered(plan)
        after = covered(merged)
        # every requested LBN is still read exactly once
        assert before <= after
        assert sum(merged.lengths.tolist()) == len(after)
        if merged.n_runs > 1:
            assert_sorted_disjoint(merged)

    @given(plans(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=200, deadline=None)
    def test_extra_blocks_only_in_small_gaps(self, plan, max_gap):
        merged = merge_plan_runs(plan, max_gap)
        extra = sorted(covered(merged) - covered(plan))
        before = covered(plan)
        # each extra block sits in a read-through hole: the nearest
        # requested blocks on both sides are at most max_gap + 1 apart
        for b in extra:
            left = b - 1
            while left not in before:
                left -= 1
            right = b + 1
            while right not in before:
                right += 1
            assert right - left - 1 <= max_gap

    @given(plans())
    @settings(max_examples=100, deadline=None)
    def test_gap_zero_merges_only_touching(self, plan):
        merged = merge_plan_runs(plan, 0)
        assert covered(merged) == covered(plan)

    @given(plans(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, plan, max_gap):
        once = merge_plan_runs(plan, max_gap)
        twice = merge_plan_runs(once, max_gap)
        assert np.array_equal(once.starts, twice.starts)
        assert np.array_equal(once.lengths, twice.lengths)

    @given(plans(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_preserves_policy_and_gap(self, plan, max_gap):
        plan = RequestPlan(plan.starts, plan.lengths, policy="sptf",
                           merge_gap=7)
        merged = merge_plan_runs(plan, max_gap)
        assert merged.policy == "sptf"
        assert merged.merge_gap == 7


class TestSlicePlan:
    @given(plans(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_concat_reproduces_plan(self, plan, max_runs):
        slices = slice_plan(plan, max_runs)
        assert all(sl.n_runs <= max_runs for sl in slices)
        assert all(sl.policy == plan.policy for sl in slices)
        if plan.n_runs:
            starts = np.concatenate([sl.starts for sl in slices])
            lengths = np.concatenate([sl.lengths for sl in slices])
            assert np.array_equal(starts, plan.starts)
            assert np.array_equal(lengths, plan.lengths)

    @given(plans())
    @settings(max_examples=50, deadline=None)
    def test_none_returns_whole_plan(self, plan):
        slices = slice_plan(plan, None)
        assert len(slices) == 1 and slices[0] is plan
