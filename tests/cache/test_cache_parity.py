"""Parity: capacity 0 (or no pool) is bit-identical to pre-cache main.

The acceptance bar of the cache subsystem: with no cache — and with a
capacity-0 pool attached directly to the storage manager —
``QueryBatch.run``, ``execute_plan``, and a seeded ``TrafficSim`` run
must produce bit-identical results and JSON to the uncached stack.
Every comparison below is ``==`` on full JSON or dataclass fields, no
tolerances.
"""

import numpy as np
import pytest

from repro.api import Dataset
from repro.cache import BufferPool
from repro.query.workload import random_beam, random_range_cube
from repro.traffic import QueryMix

LAYOUTS = ["multimap", "naive", "zorder", "hilbert"]


@pytest.mark.parametrize("layout", LAYOUTS)
class TestBatchParity:
    def test_with_cache_zero_json_identical(self, small_model, layout):
        shape = (24, 12, 12)
        plain = Dataset.create(shape, layout=layout, drive=small_model,
                               seed=11)
        r_plain = plain.query().random_beams(axis=1, n=5) \
                       .range_selectivity(5.0).run()
        cached0 = Dataset.create(shape, layout=layout, drive=small_model,
                                 seed=11).with_cache(0)
        r_cached0 = cached0.query().random_beams(axis=1, n=5) \
                           .range_selectivity(5.0).run()
        assert r_plain.to_json() == r_cached0.to_json()

    def test_capacity_zero_pool_on_executor(self, small_model, layout):
        """A literal capacity-0 BufferPool wired into the manager (not
        just ``with_cache(0)``'s detach) is also bit-identical."""
        shape = (24, 12, 12)
        ds1 = Dataset.create(shape, layout=layout, drive=small_model)
        ds2 = Dataset.create(shape, layout=layout, drive=small_model)
        ds2.storage.cache = BufferPool(0, prefetch="track")
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        for _ in range(3):
            q1 = random_beam(shape, 1, rng1)
            q2 = random_beam(shape, 1, rng2)
            assert ds1.storage.run_query(ds1.mapper, q1, rng=rng1) \
                == ds2.storage.run_query(ds2.mapper, q2, rng=rng2)
        for _ in range(2):
            q1 = random_range_cube(shape, 8.0, rng1)
            q2 = random_range_cube(shape, 8.0, rng2)
            assert ds1.storage.execute_plan(
                ds1.mapper, ds1.mapper.range_plan(q1.lo, q1.hi),
                q1.n_cells(), rng=rng1,
            ) == ds2.storage.execute_plan(
                ds2.mapper, ds2.mapper.range_plan(q2.lo, q2.hi),
                q2.n_cells(), rng=rng2,
            )


class TestTrafficParity:
    @pytest.mark.parametrize("layout", ["multimap", "zorder"])
    def test_seeded_traffic_json_identical(self, small_model, layout):
        shape = (24, 12, 12)

        def run(ds):
            return (
                ds.traffic()
                .clients(3, mix=QueryMix.beams(1, 2), queries=6)
                .slice_runs(8)
                .run()
            )

        plain = Dataset.create(shape, layout=layout, drive=small_model,
                               seed=9)
        cached0 = Dataset.create(shape, layout=layout, drive=small_model,
                                 seed=9).with_cache(0)
        assert run(plain).to_json() == run(cached0).to_json()

    def test_capacity_zero_pool_in_engine(self, small_model):
        """Pool object with capacity 0 threaded through the engine."""
        shape = (24, 12, 12)

        def run(ds):
            return (
                ds.traffic()
                .clients(2, mix=QueryMix.beams(1), queries=5)
                .run()
            )

        plain = Dataset.create(shape, layout="multimap",
                               drive=small_model, seed=13)
        with_pool = Dataset.create(shape, layout="multimap",
                                   drive=small_model, seed=13)
        with_pool.storage.cache = BufferPool(0, prefetch="adjacent")
        assert run(plain).to_json() == run(with_pool).to_json()

    def test_uncached_meta_has_no_cache_key(self, make_dataset):
        report = make_dataset().traffic().clients(1, queries=3).run()
        assert "cache" not in report.meta
        assert report.cache_stats() is None


class TestActiveCacheStillDeterministic:
    def test_same_seed_same_json_with_cache(self, small_model):
        shape = (24, 12, 12)

        def run():
            ds = Dataset.create(shape, layout="multimap",
                                drive=small_model, seed=21)
            ds.with_cache(2048, policy="slru", prefetch="track")
            return (
                ds.traffic()
                .clients(3, mix=QueryMix.beams(1, 2), queries=6)
                .slice_runs(16)
                .run()
            )

        assert run().to_json() == run().to_json()
