"""Cache integration across the executor, façade, and traffic engine."""

import numpy as np
import pytest

from repro.api import Dataset
from repro.cache import BufferPool
from repro.traffic import QueryMix


@pytest.fixture()
def cached_dataset(small_model):
    ds = Dataset.create((24, 12, 12), layout="multimap",
                        drive=small_model, seed=3)
    ds.with_cache(4096, policy="lru", prefetch="none")
    return ds


class TestExecutorPath:
    def test_repeat_query_hits_and_speeds_up(self, cached_dataset):
        ds = cached_dataset
        q = ds.query().beam(1, fixed=(5, 0, 5))
        first = q.run()
        again = ds.query().beam(1, fixed=(5, 0, 5)).run()
        rec1 = first.records[0].result
        rec2 = again.records[0].result
        # identical logical work, but served from memory
        assert rec2.n_blocks == rec1.n_blocks
        assert rec2.n_cells == rec1.n_cells
        assert rec2.total_ms < rec1.total_ms
        assert rec2.seek_ms == rec2.rotation_ms == rec2.transfer_ms == 0.0
        stats = ds.cache.stats
        assert stats.hits == rec1.n_blocks
        assert stats.hits + stats.misses == stats.accesses

    def test_memory_time_accounting(self, cached_dataset):
        ds = cached_dataset
        ds.query().beam(1, fixed=(5, 0, 5)).run()
        res = ds.query().beam(1, fixed=(5, 0, 5)).run().records[0].result
        expected = res.n_blocks * ds.cache.service_ms_per_block
        assert res.total_ms == pytest.approx(expected)

    def test_report_meta_carries_cache_snapshot(self, cached_dataset):
        rep = cached_dataset.random_beams(axis=1, n=2).run()
        snap = rep.meta["cache"]
        assert snap["capacity_blocks"] == 4096
        assert snap["stats"]["accesses"] > 0

    def test_prepare_partitions_plan(self, cached_dataset):
        ds = cached_dataset
        ds.query().beam(1, fixed=(5, 0, 5)).run()
        from repro.query.workload import BeamQuery

        prepared = ds.storage.prepare(
            ds.mapper, BeamQuery(1, (5, 0, 5))
        )
        assert prepared.cache_hits == 12
        assert prepared.plan.n_runs == 0
        assert prepared.cache_ms > 0


class TestWithCacheFacade:
    def test_with_cache_zero_detaches(self, cached_dataset):
        assert cached_dataset.cache is not None
        cached_dataset.with_cache(0)
        assert cached_dataset.cache is None
        assert "cache" not in cached_dataset.describe()

    def test_negative_capacity_rejected(self, cached_dataset):
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            cached_dataset.with_cache(-4)

    def test_bad_names_rejected_even_at_capacity_zero(self, small_model):
        from repro.errors import RegistryError

        ds = Dataset.create((24, 12, 12), layout="naive",
                            drive=small_model)
        with pytest.raises(RegistryError):
            ds.with_cache(0, policy="nope")
        with pytest.raises(RegistryError):
            ds.with_cache(0, prefetch="bogus")

    def test_policy_instances_rejected(self, small_model):
        """A pre-built policy object would be shared across with_layout
        clones (one pool's residency leaking into another layout's
        measurements) — with_cache only takes re-instantiable specs."""
        from repro.cache import LRUPolicy
        from repro.errors import DatasetError

        ds = Dataset.create((24, 12, 12), layout="naive",
                            drive=small_model)
        with pytest.raises(DatasetError):
            ds.with_cache(64, policy=LRUPolicy(64))

    def test_describe_gains_cache_spec(self, cached_dataset):
        spec = cached_dataset.describe()["cache"]
        assert spec == {"capacity_blocks": 4096, "policy": "lru",
                        "prefetch": "none"}

    def test_with_layout_clones_spec_not_pool(self, cached_dataset):
        clone = cached_dataset.with_layout("zorder")
        assert clone.cache is not None
        assert clone.cache is not cached_dataset.cache
        assert clone.describe()["cache"] \
            == cached_dataset.describe()["cache"]

    def test_chainable_from_create(self, small_model):
        ds = Dataset.create((24, 12, 12), layout="naive",
                            drive=small_model, seed=1).with_cache(
            512, policy="scan", prefetch="adjacent",
            prefetch_opts={"steps": 2},
        )
        assert ds.cache.policy.describe() == "scan"
        assert ds.cache.prefetcher.describe() == "adjacent[2]"


class TestPrefetchers:
    def test_track_prefetch_rounds_to_track(self, small_model):
        ds = Dataset.create((24, 12, 12), layout="multimap",
                            drive=small_model, seed=3)
        ds.with_cache(8192, prefetch="track")
        ds.query().beam(0, fixed=(0, 2, 3)).run()
        geom = ds.volume.models[0].geometry
        # every block of every track the beam touched is now resident
        plan = ds.mapper.beam_plan(0, (0, 2, 3))
        for start in plan.starts.tolist():
            lo, hi = geom.track_boundaries(int(start))
            assert all(ds.cache.contains(0, lbn) for lbn in range(lo, hi))
        assert ds.cache.stats.prefetch_issued > 0

    def test_adjacent_prefetch_pulls_successors(self, small_model):
        ds = Dataset.create((24, 12, 12), layout="multimap",
                            drive=small_model, seed=3)
        ds.with_cache(8192, prefetch="adjacent",
                      prefetch_opts={"steps": 3})
        ds.query().beam(0, fixed=(0, 2, 3)).run()
        plan = ds.mapper.beam_plan(0, (0, 2, 3))
        adj = ds.volume.adjacency[0]
        last = int(plan.starts[-1] + plan.lengths[-1] - 1)
        for step in (1, 2, 3):
            assert ds.cache.contains(0, adj.get_adjacent(last, step))

    def test_prefetch_hits_counted(self, small_model):
        # naive on the 120-sector tracks packs 5 rows per track, so
        # rounding one beam out to its track caches the neighbor rows
        ds = Dataset.create((24, 12, 12), layout="naive",
                            drive=small_model, seed=3)
        ds.with_cache(8192, prefetch="track")
        ds.query().beam(0, fixed=(0, 2, 3)).run()
        issued = ds.cache.stats.prefetch_issued
        assert issued > 0
        # the neighboring beam lives on the prefetched track
        ds.query().beam(0, fixed=(0, 3, 3)).run()
        assert ds.cache.stats.prefetch_hits > 0
        assert ds.cache.stats.prefetch_hits <= issued


class TestUpdateInvalidation:
    def test_insert_invalidates_cell_home_blocks(self, small_model):
        ds = Dataset.create((24, 12, 12), layout="multimap",
                            drive=small_model, seed=3)
        ds.with_cache(4096)
        ds.query().beam(1, fixed=(5, 0, 5)).run()
        import numpy as np

        cell = (5, 4, 5)
        first = int(ds.mapper.lbns(np.asarray([cell]))[0])
        assert ds.cache.contains(0, first)
        ds.insert(cell)
        assert not ds.cache.contains(0, first)

    def test_reorganize_clears_pool(self, small_model):
        ds = Dataset.create((24, 12, 12), layout="multimap",
                            drive=small_model, seed=3)
        ds.with_cache(4096)
        ds.configure_store(points_per_cell=8)
        ds.query().beam(1, fixed=(5, 0, 5)).run()
        assert ds.cache.occupancy > 0
        ds.insert((1, 1, 1))  # 1/8 underflows the reclaim threshold
        assert ds.needs_reorganization
        ds.reorganize()
        assert ds.cache.occupancy == 0

    def test_bulk_load_clears_pool(self, small_model):
        ds = Dataset.create((24, 12, 12), layout="multimap",
                            drive=small_model, seed=3)
        ds.with_cache(4096)
        ds.query().beam(1, fixed=(5, 0, 5)).run()
        assert ds.cache.occupancy > 0
        ds.bulk_load([(0, 0, 0), (1, 0, 0)])
        assert ds.cache.occupancy == 0


class TestTrafficIntegration:
    def test_shared_pool_across_clients(self, small_model):
        ds = Dataset.create((24, 12, 12), layout="multimap",
                            drive=small_model, seed=5)
        ds.with_cache(4096, prefetch="track")
        report = (
            ds.traffic()
            .clients(4, mix=QueryMix.beams(1), queries=8)
            .run()
        )
        snap = report.cache_stats()
        assert snap["stats"]["hits"] > 0
        assert snap["stats"]["hits"] + snap["stats"]["misses"] \
            == snap["stats"]["accesses"]
        # trace totals still count cached blocks as work done
        assert all(tr.n_blocks > 0 for tr in report.traces)
        assert "cache" in report.render_table()

    def test_fully_cached_query_completes(self, small_model):
        """A query whose every block hits never touches the drive but
        still completes, with memory-only service time."""
        ds = Dataset.create((24, 12, 12), layout="multimap",
                            drive=small_model, seed=5)
        ds.with_cache(8192)
        from repro.query.workload import BeamQuery

        beam = BeamQuery(1, (7, 0, 7))
        ds.query().add([beam]).run()  # warm
        from repro.traffic import Replay

        report = (
            ds.traffic()
            .clients(1, mix=Replay([beam]), queries=3)
            .run()
        )
        assert len(report.traces) == 3
        last = report.traces[-1]
        assert last.n_blocks == 12
        assert last.service_ms == pytest.approx(
            12 * ds.cache.service_ms_per_block
        )
        assert last.n_slices == 0  # never entered the drive queue
        # the drive did no work and recorded no phantom slices
        for d in report.drives:
            assert d.served_slices == 0
            assert d.served_blocks == 0
            assert d.busy_ms == 0.0

    def test_engine_admits_on_completion(self, small_model):
        ds = Dataset.create((24, 12, 12), layout="naive",
                            drive=small_model, seed=5)
        ds.with_cache(4096)
        assert ds.cache.occupancy == 0
        ds.traffic().clients(1, mix=QueryMix.beams(1), queries=2).run()
        assert ds.cache.occupancy > 0


class TestStorageManagerDirect:
    def test_constructor_accepts_pool(self, small_model):
        from repro.lvm.volume import LogicalVolume
        from repro.query.executor import StorageManager

        volume = LogicalVolume([small_model])
        pool = BufferPool(128)
        sm = StorageManager(volume, cache=pool)
        assert sm.cache is pool

    def test_run_query_admits_and_hits(self, small_model):
        ds = Dataset.create((24, 12, 12), layout="naive",
                            drive=small_model, seed=2)
        ds.storage.cache = BufferPool(2048)
        rng = np.random.default_rng(0)
        from repro.query.workload import BeamQuery

        q = BeamQuery(2, (3, 3, 0))
        cold = ds.storage.run_query(ds.mapper, q, rng=rng)
        warm = ds.storage.run_query(ds.mapper, q, rng=rng)
        assert warm.total_ms < cold.total_ms
        assert warm.n_blocks == cold.n_blocks
        assert ds.storage.cache.stats.hit_ratio == 0.5
