"""BufferPool invariants: occupancy, stats accounting, plan filtering.

The hypothesis suites drive pools of every builtin policy with random
plan streams and pin the ISSUE's invariants: occupancy never exceeds
capacity, ``hits + misses == accesses``, and the filter partitions each
plan exactly (hit blocks + miss-plan blocks == plan blocks, disjoint,
order preserved).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import BufferPool, expand_plan
from repro.errors import CacheError
from repro.mappings.base import RequestPlan


def plan_of(starts, lengths, policy="sorted"):
    return RequestPlan(
        np.asarray(starts, dtype=np.int64),
        np.asarray(lengths, dtype=np.int64),
        policy=policy,
    )


plans = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=1, max_value=12),
    ),
    min_size=0,
    max_size=12,
).map(lambda rl: plan_of([r for r, _ in rl], [n for _, n in rl]))

plan_streams = st.lists(plans, min_size=1, max_size=8)


class TestExpandPlan:
    def test_empty(self):
        assert expand_plan(plan_of([], [])).size == 0

    def test_order_preserved(self):
        plan = plan_of([10, 3, 10], [2, 1, 3], policy="fifo")
        assert expand_plan(plan).tolist() == [10, 11, 3, 10, 11, 12]


class TestConstruction:
    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            BufferPool(-1)

    def test_negative_service_rejected(self):
        with pytest.raises(CacheError):
            BufferPool(8, service_ms_per_block=-1.0)

    def test_describe_layout(self):
        pool = BufferPool(8, policy="slru", prefetch="adjacent",
                          prefetch_opts={"steps": 2})
        d = pool.describe()
        assert d["policy"] == "slru"
        assert d["prefetch"] == "adjacent[2]"
        assert d["stats"]["accesses"] == 0

    def test_inactive_pool_is_inert(self):
        pool = BufferPool(0)
        plan = plan_of([5], [4])
        out, hits, runs = pool.filter_plan(0, plan)
        assert out is plan and hits == 0 and runs == 0
        pool.admit_plan(None, 0, plan)  # volume unused when inactive
        assert pool.occupancy == 0
        assert pool.stats.accesses == 0


class TestFilterPartition:
    def test_cold_pool_returns_same_object(self):
        pool = BufferPool(64)
        plan = plan_of([5, 30], [4, 2])
        out, hits, runs = pool.filter_plan(0, plan)
        assert out is plan
        assert (hits, runs) == (0, 0)
        assert pool.stats.misses == 6

    def test_full_hit_gives_empty_miss_plan(self):
        pool = BufferPool(64)
        plan = plan_of([5], [4])
        pool.admit_plan(None, 0, plan_of([5], [4], policy="fifo"))
        out, hits, runs = pool.filter_plan(0, plan)
        assert out.n_runs == 0 and out.n_blocks == 0
        assert hits == 4 and runs == 1
        assert out.policy == plan.policy

    def test_partial_hit_preserves_order_and_policy(self):
        pool = BufferPool(64)
        pool.admit_plan(None, 0, plan_of([11], [2]))  # cache 11,12
        plan = plan_of([20, 10, 30], [2, 4, 1], policy="fifo")
        out, hits, runs = pool.filter_plan(0, plan)
        assert hits == 2 and runs == 1
        assert out.policy == "fifo"
        assert expand_plan(out).tolist() == [20, 21, 10, 13, 30]

    @given(plan_streams, st.integers(min_value=0, max_value=64),
           st.sampled_from(["lru", "slru", "scan"]))
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, stream, capacity, policy):
        pool = BufferPool(capacity, policy=policy)
        for plan in stream:
            before = pool.stats.accesses
            miss, hits, hit_runs = pool.filter_plan(0, plan)
            blocks = expand_plan(plan)
            miss_blocks = expand_plan(miss)
            # partition: hits + miss blocks == plan blocks
            assert hits + miss_blocks.size == blocks.size
            assert hits >= 0 and hit_runs >= 0
            if hits == 0:
                assert miss is plan
            else:
                # miss blocks appear in plan order as a subsequence
                it = iter(blocks.tolist())
                assert all(b in it for b in miss_blocks.tolist())
            # accounting (an inactive pool never counts)
            s = pool.stats
            expected = before + blocks.size if pool.active else 0
            assert s.accesses == expected
            assert s.hits + s.misses == s.accesses
            pool.admit_plan(None, 0, miss)
            # occupancy bounded, always
            assert pool.occupancy <= max(pool.capacity, 0)
            assert s.prefetch_hits <= s.prefetch_issued
        # resident set is exactly what the policy tracks, and the
        # per-disk mirror used for vectorized membership agrees
        assert len(pool.policy) == pool.occupancy
        assert sum(len(s) for s in pool._resident.values()) \
            == pool.occupancy


class TestMaintenance:
    def test_invalidate_and_clear(self):
        pool = BufferPool(16)
        pool.admit_plan(None, 0, plan_of([0], [4]))
        assert pool.contains(0, 2)
        pool.invalidate(0, [2])
        assert not pool.contains(0, 2)
        assert pool.contains(0, 3)
        pool.clear()
        assert pool.occupancy == 0

    def test_reset_stats_keeps_contents(self):
        pool = BufferPool(16)
        pool.admit_plan(None, 0, plan_of([0], [4]))
        pool.filter_plan(0, plan_of([0], [4]))
        assert pool.stats.hits == 4
        pool.reset_stats()
        assert pool.stats.accesses == 0
        assert pool.contains(0, 0)

    def test_disk_is_part_of_the_key(self):
        pool = BufferPool(16)
        pool.admit_plan(None, 0, plan_of([0], [2]))
        assert pool.contains(0, 1)
        assert not pool.contains(1, 1)

    def test_eviction_counts(self):
        pool = BufferPool(4)
        pool.admit_plan(None, 0, plan_of([0], [10]))
        assert pool.occupancy == 4
        assert pool.stats.evictions == 6

    def test_prefetch_readmission_does_not_promote(self):
        """A speculative prefetch landing on a resident block is not a
        reference: an SLRU probation block must stay probationary."""
        pool = BufferPool(16, policy="slru")
        pool.admit_plan(None, 0, plan_of([5], [1]))  # demand -> probation
        assert (0, 5) in pool.policy._probation
        pool._admit((0, 5), scan=False, prefetch=True)
        assert (0, 5) in pool.policy._probation
        # a demand re-fetch of the same block IS a reference
        pool._admit((0, 5), scan=False, prefetch=False)
        assert (0, 5) in pool.policy._protected
