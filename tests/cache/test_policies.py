"""Eviction-policy invariants, unit and property-based.

The property suites drive each policy with random admit/hit sequences
and compare against simple reference models: LRU against an ordered
list, scan-resistant against the rule "scan blocks without a hit evict
before any non-scan block admitted earlier", SLRU against the rule
"a probationary block can never outlive a protected one under
probation-only pressure".
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import POLICIES, policy_names, register_policy
from repro.cache.policies import (
    LRUPolicy,
    ScanResistantPolicy,
    SegmentedLRUPolicy,
    make_policy,
)
from repro.errors import CacheError, RegistryError

# random event streams: (key, is_hit_if_possible, scan_flag)
events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.booleans(),
        st.booleans(),
    ),
    min_size=0,
    max_size=120,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(policy_names()) >= {"lru", "slru", "scan"}

    def test_lookup_by_name(self):
        assert POLICIES.get("lru") is LRUPolicy
        assert POLICIES.get("slru") is SegmentedLRUPolicy
        assert POLICIES.get("scan") is ScanResistantPolicy

    def test_unknown_name_lists_valid(self):
        with pytest.raises(RegistryError, match="lru"):
            POLICIES.get("nope")

    def test_duplicate_name_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):

            @register_policy("lru")
            class Impostor(LRUPolicy):
                pass

    def test_same_definition_reregisters_benignly(self):
        """A re-executed defining module (retried import, notebook
        cell) may re-register the identical class without error."""

        class Again(LRUPolicy):
            pass

        register_policy("rereg-demo")(Again)
        register_policy("rereg-demo")(Again)  # benign overwrite
        assert POLICIES.get("rereg-demo") is Again

    def test_make_policy_specs(self):
        assert isinstance(make_policy("lru", 8), LRUPolicy)
        assert isinstance(make_policy(LRUPolicy, 8), LRUPolicy)
        inst = LRUPolicy(8)
        assert make_policy(inst, 99) is inst
        with pytest.raises(CacheError):
            make_policy(42, 8)


class TestLRU:
    def test_victim_is_least_recent(self):
        p = LRUPolicy(3)
        for k in (1, 2, 3):
            p.admit((0, k))
        p.on_hit((0, 1))  # 1 becomes most recent
        p.admit((0, 4))
        assert p.victim() == (0, 2)

    def test_discard_and_clear(self):
        p = LRUPolicy(3)
        p.admit((0, 1))
        p.discard((0, 1))
        p.discard((0, 99))  # absent is fine
        assert len(p) == 0
        p.admit((0, 2))
        p.clear()
        assert (0, 2) not in p

    def test_victim_empty_raises(self):
        with pytest.raises(CacheError):
            LRUPolicy(2).victim()

    @given(events, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_model(self, evs, capacity):
        """LRU == an ordered-list reference, event for event."""
        policy = LRUPolicy(capacity)
        model: list[tuple] = []  # index 0 = coldest
        for lbn, want_hit, _ in evs:
            key = (0, lbn)
            if key in policy:
                assert key in model
                if want_hit:
                    policy.on_hit(key)
                    model.remove(key)
                    model.append(key)
                continue
            assert key not in model
            policy.admit(key)
            model.append(key)
            while len(policy) > capacity:
                assert policy.victim() == model.pop(0)
        assert tuple(model) == policy.keys()


class TestScanResistant:
    def test_scan_blocks_evict_first(self):
        p = ScanResistantPolicy(4)
        p.admit((0, 1))
        p.admit((0, 2))
        p.admit((0, 10), scan=True)
        p.admit((0, 11), scan=True)
        p.admit((0, 3))
        # over capacity: the scan blocks go before 1 and 2
        assert p.victim() in {(0, 10), (0, 11)}
        assert p.victim() in {(0, 10), (0, 11)}
        assert p.victim() == (0, 1)

    def test_hit_rescues_scan_block(self):
        p = ScanResistantPolicy(3)
        p.admit((0, 1))
        p.admit((0, 10), scan=True)
        p.on_hit((0, 10))  # earned residency
        p.admit((0, 2))
        p.admit((0, 3))
        assert p.victim() == (0, 1)

    @given(events, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_nonscan_never_evicts_while_unhit_scan_resident(
        self, evs, capacity
    ):
        """A never-hit non-scan block only leaves once every never-hit
        scan block is gone — scans recycle their own frames."""
        policy = ScanResistantPolicy(capacity)
        scan_flag: dict[tuple, bool] = {}
        touched: set[tuple] = set()
        for lbn, want_hit, scan in evs:
            key = (0, lbn)
            if key in policy:
                if want_hit:
                    policy.on_hit(key)
                    touched.add(key)
                continue
            policy.admit(key, scan=scan)
            scan_flag[key] = scan
            touched.discard(key)
            while len(policy) > capacity:
                victim = policy.victim()
                if not scan_flag[victim] and victim not in touched:
                    assert not any(
                        scan_flag[k] and k not in touched
                        for k in policy.keys()
                    )


class TestSegmentedLRU:
    def test_promotion_protects(self):
        p = SegmentedLRUPolicy(4, protected_frac=0.5)
        p.admit((0, 1))
        p.on_hit((0, 1))  # 1 now protected
        for k in (2, 3, 4, 5, 6):
            p.admit((0, k))
            while len(p) > 4:
                v = p.victim()
                assert v != (0, 1), "protected block evicted by scan"
        assert (0, 1) in p

    def test_protected_overflow_demotes(self):
        p = SegmentedLRUPolicy(4, protected_frac=0.5)  # protected cap 2
        for k in (1, 2, 3):
            p.admit((0, k))
            p.on_hit((0, k))
        # 1 was demoted back to probation when 3 promoted
        assert len(p) == 3
        assert p.victim() == (0, 1)

    def test_bad_frac_rejected(self):
        with pytest.raises(CacheError):
            SegmentedLRUPolicy(4, protected_frac=1.5)

    @given(events, st.integers(min_value=2, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_victims_prefer_probation(self, evs, capacity):
        """Whenever probation is non-empty, the victim comes from it
        (protected blocks only leave when probation is exhausted)."""
        policy = SegmentedLRUPolicy(capacity)
        for lbn, want_hit, scan in evs:
            key = (0, lbn)
            if key in policy:
                if want_hit:
                    policy.on_hit(key)
                continue
            policy.admit(key, scan=scan)
            while len(policy) > capacity:
                probation = set(policy._probation)
                victim = policy.victim()
                if probation:
                    assert victim in probation
