"""The cache sweep and the locality dividend it demonstrates."""

import pytest

from repro.cache import overlapping_beams, render_cache_sweep, run_cache_sweep

QUICK = dict(
    shape=(120, 16, 16),
    capacities=(12288, 24576),
    policy="lru",
    prefetch="track",
    n_beams=16,
    repeats=3,
    axes=(1,),
    region_frac=0.4,
    drive="minidrive",
    seed=42,
)


@pytest.fixture(scope="module")
def sweep_data():
    return run_cache_sweep(**QUICK)


class TestOverlappingBeams:
    def test_deterministic(self):
        a = overlapping_beams((120, 16, 16), seed=7)
        b = overlapping_beams((120, 16, 16), seed=7)
        assert a == b
        assert a != overlapping_beams((120, 16, 16), seed=8)

    def test_anchors_inside_region(self):
        shape = (120, 16, 16)
        for q in overlapping_beams(shape, n_beams=32, axes=(1,),
                                   region_frac=0.25, seed=3):
            assert q.axis == 1
            for d, v in enumerate(q.fixed):
                if d != q.axis:
                    assert 0 <= v < max(1, int(shape[d] * 0.25))

    def test_axes_cycle(self):
        qs = overlapping_beams((120, 16, 16), n_beams=4, axes=(0, 2),
                               seed=1)
        assert [q.axis for q in qs] == [0, 2, 0, 2]


class TestSweepStructure:
    def test_layout_and_capacity_keys(self, sweep_data):
        for layout in ("naive", "zorder", "hilbert", "multimap"):
            assert set(sweep_data[layout]) == set(QUICK["capacities"])
        meta = sweep_data["meta"]
        assert meta["policy"] == "lru"
        assert meta["prefetch"] == "track"
        assert meta["capacities"] == list(QUICK["capacities"])

    def test_cells_carry_stats(self, sweep_data):
        cell = sweep_data["multimap"][12288]
        assert 0.0 <= cell["hit_ratio"] <= 1.0
        assert cell["total_ms"] > 0
        assert cell["occupancy"] <= 12288

    def test_capacity_zero_is_uncached_baseline(self):
        data = run_cache_sweep(
            (24, 12, 12), layouts=("naive",), capacities=(0,),
            n_beams=4, repeats=2, axes=(1,), drive="minidrive", seed=5,
        )
        cell = data["naive"][0]
        assert cell["hit_ratio"] == 0.0
        assert cell["occupancy"] == 0

    def test_render_mentions_layouts_and_caps(self, sweep_data):
        text = render_cache_sweep(sweep_data)
        assert "multimap" in text and "cap 12288" in text
        assert "hit ratio" in text


class TestLocalityDividend:
    """The PR's acceptance claim, pinned at quick scale."""

    def test_multimap_ge_everyone_everywhere(self, sweep_data):
        for cap in QUICK["capacities"]:
            mm = sweep_data["multimap"][cap]["hit_ratio"]
            for layout in ("naive", "zorder", "hilbert"):
                assert mm >= sweep_data[layout][cap]["hit_ratio"], (
                    layout, cap)

    def test_multimap_strictly_beats_best_sfc(self, sweep_data):
        beaten = []
        for cap in QUICK["capacities"]:
            mm = sweep_data["multimap"][cap]["hit_ratio"]
            best_sfc = max(sweep_data["zorder"][cap]["hit_ratio"],
                           sweep_data["hilbert"][cap]["hit_ratio"])
            beaten.append(mm > best_sfc)
        assert any(beaten), "no capacity where multimap strictly wins"

    def test_sweep_is_deterministic(self):
        small = dict(QUICK, capacities=(12288,),
                     layouts=("naive", "multimap"))
        assert run_cache_sweep(**small) == run_cache_sweep(**small)
