"""Hypothesis properties pinning the vectorized plan-preparation fast
path bit-identical to the pure-Python per-cell reference."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import Dataset
from repro.mappings.base import Mapper
from repro.perf.reference import reference_intersections, reference_prepare
from repro.query.workload import BeamQuery, RangeQuery
from repro.shard.map import ShardMap

LAYOUTS = ("naive", "zorder", "hilbert", "multimap")
SHAPE = (16, 8, 8)

# datasets are pure under queries, so one per (layout, cell_blocks)
# serves every hypothesis example
_DATASETS: dict = {}


def dataset_for(layout: str, cell_blocks: int) -> Dataset:
    key = (layout, cell_blocks)
    if key not in _DATASETS:
        _DATASETS[key] = Dataset.create(
            SHAPE, layout=layout, drive="minidrive", seed=7,
            cell_blocks=cell_blocks,
        )
    return _DATASETS[key]


@st.composite
def beam_queries(draw):
    axis = draw(st.integers(0, len(SHAPE) - 1))
    fixed = tuple(
        0 if d == axis else draw(st.integers(0, s - 1))
        for d, s in enumerate(SHAPE)
    )
    lo = draw(st.integers(0, SHAPE[axis] - 1))
    hi = draw(st.integers(lo + 1, SHAPE[axis]))
    return BeamQuery(axis=axis, fixed=fixed, lo=lo, hi=hi)


@st.composite
def range_queries(draw):
    lo, hi = [], []
    for s in SHAPE:
        a = draw(st.integers(0, s - 1))
        b = draw(st.integers(a + 1, s))
        lo.append(a)
        hi.append(b)
    return RangeQuery(tuple(lo), tuple(hi))


def assert_prepared_equal(fast, ref):
    assert fast.mapper_name == ref.mapper_name
    assert fast.disk_index == ref.disk_index
    assert fast.policy == ref.policy
    assert fast.n_cells == ref.n_cells
    assert fast.plan.policy == ref.plan.policy
    assert fast.plan.merge_gap == ref.plan.merge_gap
    assert np.array_equal(fast.plan.starts, ref.plan.starts)
    assert np.array_equal(fast.plan.lengths, ref.plan.lengths)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(layout=st.sampled_from(LAYOUTS),
       cell_blocks=st.sampled_from([1, 2]),
       query=st.one_of(beam_queries(), range_queries()))
def test_prepare_matches_reference(layout, cell_blocks, query):
    ds = dataset_for(layout, cell_blocks)
    fast = ds.storage.prepare(ds.mapper, query)
    ref = reference_prepare(ds.storage, ds.mapper, query)
    assert_prepared_equal(fast, ref)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(layout=st.sampled_from(("naive", "zorder", "hilbert")),
       query=beam_queries())
def test_linear_beam_override_matches_generic(layout, query):
    # LinearMapper.beam_plan short-circuits through plan_from_ranks;
    # the generic base implementation must describe the same runs
    mapper = dataset_for(layout, 1).mapper
    fast = mapper.beam_plan(query.axis, query.fixed, query.lo, query.hi)
    generic = Mapper.beam_plan(mapper, query.axis, query.fixed,
                               query.lo, query.hi)
    assert fast.policy == generic.policy
    assert fast.merge_gap == generic.merge_gap
    assert np.array_equal(fast.starts, generic.starts)
    assert np.array_equal(fast.lengths, generic.lengths)


@pytest.fixture(scope="module")
def shard_map():
    return ShardMap.build((12, 10, 8), 3, chunk_shape=(5, 4, 3))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_intersections_match_reference(shard_map, data):
    dims = shard_map.dims
    lo, hi = [], []
    for s in dims:
        a = data.draw(st.integers(0, s - 1))
        b = data.draw(st.integers(a + 1, s))
        lo.append(a)
        hi.append(b)
    got = list(shard_map.intersections(lo, hi))
    want = reference_intersections(shard_map, lo, hi)
    assert len(got) == len(want)
    for (gc, glo, ghi), (wc, wlo, whi) in zip(got, want):
        assert gc is wc
        assert glo == wlo
        assert ghi == whi


def test_reference_refuses_cached_storage():
    from repro.errors import QueryError

    ds = Dataset.create((8, 6, 6), layout="naive", drive="minidrive",
                        seed=7).with_cache(1024)
    with pytest.raises(QueryError, match="uncached"):
        reference_prepare(ds.storage, ds.mapper,
                          BeamQuery(axis=1, fixed=(0, 0, 0)))


def test_intersections_empty_box_edge(shard_map):
    dims = shard_map.dims
    # a box hugging the far corner touches exactly one chunk
    lo = tuple(s - 1 for s in dims)
    hi = dims
    got = list(shard_map.intersections(lo, hi))
    assert got == reference_intersections(shard_map, lo, hi)
    assert len(got) == 1
