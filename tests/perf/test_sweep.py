"""The perf sweep, its regression gate, and the CLI wiring."""

import json

import pytest

from repro.bench.cli import main
from repro.errors import BenchmarkError
from repro.perf.sweep import check_perf, render_perf_sweep, run_perf_sweep

SWEEP_ARGS = dict(
    layouts=("naive", "multimap"),
    drive="minidrive",
    n_beams=2,
    n_ranges=1,
    full_ranges=1,
    repeats=1,
    ref_plans=3,
    ref_cell_cap=2048,
    seed=42,
)


@pytest.fixture(scope="module")
def sweep_data():
    return run_perf_sweep((16, 8, 8), **SWEEP_ARGS)


def test_sweep_metrics_per_layout(sweep_data):
    for layout in ("naive", "multimap"):
        row = sweep_data[layout]
        assert row["n_plans"] == 4
        assert row["plans_per_s"] > 0
        assert row["cells_per_s"] > 0
        assert 0 < row["prep_share"] < 1
        assert row["ref_plans"] == 3
        assert row["speedup_vs_reference"] > 0
    meta = sweep_data["meta"]
    assert meta["shape"] == [16, 8, 8]
    assert meta["seed"] == 42
    assert "memo" in meta


def test_render_lists_every_layout(sweep_data):
    table = render_perf_sweep(sweep_data)
    assert "naive" in table
    assert "multimap" in table
    assert "speedup vs ref" in table


def test_check_against_itself_is_clean(sweep_data):
    assert check_perf(sweep_data, sweep_data) == []


def test_check_flags_regressions(sweep_data):
    inflated = json.loads(json.dumps(sweep_data))
    inflated["naive"]["speedup_vs_reference"] *= 1000
    inflated["naive"]["plans_per_s"] *= 1000
    violations = check_perf(sweep_data, inflated)
    assert any("speedup_vs_reference" in v for v in violations)
    assert any("plans_per_s" in v for v in violations)
    assert all(v.startswith("naive:") for v in violations)


def test_check_flags_missing_layout(sweep_data):
    baseline = json.loads(json.dumps(sweep_data))
    baseline["hilbert"] = baseline["naive"]
    violations = check_perf(sweep_data, baseline)
    assert violations == ["hilbert: missing from this sweep"]


def test_check_rejects_bad_tolerances(sweep_data):
    with pytest.raises(BenchmarkError):
        check_perf(sweep_data, sweep_data, tolerance=1.0)
    with pytest.raises(BenchmarkError):
        check_perf(sweep_data, sweep_data, throughput_tolerance=-0.1)


def test_sweep_rejects_bad_params():
    with pytest.raises(BenchmarkError):
        run_perf_sweep((8, 8), layouts=("naive",), drive="minidrive",
                       repeats=0)
    with pytest.raises(BenchmarkError, match="ref_cell_cap"):
        run_perf_sweep((8, 8), layouts=("naive",), drive="minidrive",
                       n_beams=1, n_ranges=0, full_ranges=0, repeats=1,
                       ref_cell_cap=0)


CLI_ARGS = [
    "perf", "--shape", "16,8,8", "--layouts", "naive,multimap",
    "--drive", "minidrive", "--beams", "2", "--ranges", "1",
    "--full-ranges", "1", "--repeats", "1", "--ref-plans", "3",
    "--ref-cell-cap", "2048",
]


def test_cli_perf_writes_json(tmp_path, capsys):
    out = tmp_path / "perf.json"
    assert main([*CLI_ARGS, "--json", str(out)]) == 0
    data = json.loads(out.read_text())
    assert "naive" in data and "multimap" in data
    assert "speedup vs ref" in capsys.readouterr().out


def test_cli_perf_check_pass_and_fail(tmp_path, capsys):
    baseline = tmp_path / "base.json"
    assert main([*CLI_ARGS, "--quiet", "--json", str(baseline)]) == 0
    assert main([*CLI_ARGS, "--quiet", "--check", str(baseline)]) == 0

    doctored = json.loads(baseline.read_text())
    doctored["naive"]["speedup_vs_reference"] *= 1000
    baseline.write_text(json.dumps(doctored))
    capsys.readouterr()
    assert main([*CLI_ARGS, "--quiet", "--check", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "perf check FAILED" in out
    assert "speedup_vs_reference" in out


def test_cli_list_probes(capsys):
    assert main(["--list-probes"]) == 0
    out = capsys.readouterr().out
    assert "perf probes" in out
    assert "plans_prepared" in out
    assert "traffic_run_ms" in out
