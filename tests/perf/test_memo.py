"""The mapper memo: shared code tables and basic-cube plans."""

import numpy as np
import pytest

from repro.api import Dataset
from repro.core.planner import plan_basic_cube
from repro.perf.memo import MEMO, MapperMemo


@pytest.fixture()
def fresh_memo():
    """Run against a clean global memo, restoring prior contents."""
    MEMO.clear()
    MEMO.reset_stats()
    MEMO.enabled = True
    yield MEMO
    MEMO.clear()
    MEMO.reset_stats()
    MEMO.enabled = True


def test_code_table_shared_across_instances(fresh_memo, make_dataset):
    a = make_dataset(layout="zorder", shape=(8, 8, 4))
    b = make_dataset(layout="zorder", shape=(8, 8, 4))
    ta = a.mapper.code_table()
    tb = b.mapper.code_table()
    assert ta is tb
    assert not ta.flags.writeable
    assert fresh_memo.stats()["hits"] >= 1


def test_different_dims_get_different_tables(fresh_memo, make_dataset):
    a = make_dataset(layout="hilbert", shape=(8, 8, 4))
    b = make_dataset(layout="hilbert", shape=(8, 4, 4))
    assert a.mapper.code_table() is not b.mapper.code_table()


def test_drop_cache_evicts_memo_entry(fresh_memo, make_dataset):
    m = make_dataset(layout="zorder", shape=(8, 8, 4)).mapper
    t1 = m.code_table()
    m.drop_cache()
    t2 = m.code_table()
    assert t2 is not t1
    assert np.array_equal(t1, t2)


def test_disabled_memo_builds_fresh_per_instance(fresh_memo,
                                                 make_dataset):
    fresh_memo.enabled = False
    a = make_dataset(layout="zorder", shape=(8, 8, 4))
    b = make_dataset(layout="zorder", shape=(8, 8, 4))
    ta = a.mapper.code_table()
    tb = b.mapper.code_table()
    assert ta is not tb
    assert np.array_equal(ta, tb)
    # each instance still reuses its own table across calls
    assert a.mapper.code_table() is ta


def test_basic_cube_plan_memoized(fresh_memo):
    args = ((64, 64, 32), 686, 800, 128, "compact")
    p1 = plan_basic_cube(*args)
    p2 = plan_basic_cube(*args)
    assert p1 is p2
    assert plan_basic_cube((64, 64, 32), 686, 800, 128, "volume") is not p1


def test_stats_clear_and_reset():
    memo = MapperMemo()
    assert memo.get("k", 1) is None  # miss
    memo.put("k", 1, "v")
    assert memo.get("k", 1) == "v"  # hit
    stats = memo.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == {"k": 1}
    memo.clear()
    assert memo.stats()["entries"] == {}
    assert memo.stats()["hits"] == 1  # counters survive clear
    memo.reset_stats()
    assert memo.stats()["hits"] == 0


def test_get_or_build_and_evict():
    memo = MapperMemo()
    built = []

    def builder():
        built.append(1)
        return object()

    v1 = memo.get_or_build("k", "key", builder)
    v2 = memo.get_or_build("k", "key", builder)
    assert v1 is v2
    assert built == [1]
    memo.evict("k", "key")
    memo.evict("k", "missing")  # idempotent
    v3 = memo.get_or_build("k", "key", builder)
    assert v3 is not v1
    assert built == [1, 1]


def test_with_layout_clone_shares_table(fresh_memo):
    ds = Dataset.create((8, 8, 4), layout="zorder", drive="minidrive",
                        seed=3)
    clone = ds.with_layout("zorder")
    assert ds.mapper.code_table() is clone.mapper.code_table()
