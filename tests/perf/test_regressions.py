"""Regression tests for the curve-codec and RequestPlan hardening."""

import numpy as np
import pytest

from repro.errors import MappingError, QueryError
from repro.mappings.base import RequestPlan
from repro.mappings.curves import (
    gray_rank,
    gray_unrank,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
)


class TestScalarDecode:
    """Scalar / 0-d codes used to crash with raw numpy AxisError."""

    def test_hilbert_scalar_round_trip(self):
        for code in range(16):
            coords = hilbert_decode(code, 2, 2)
            assert coords.shape == (1, 2)
            assert int(hilbert_encode(coords, 2)[0]) == code

    def test_hilbert_python_int(self):
        assert hilbert_decode(5, 2, 3).shape == (1, 2)

    def test_morton_scalar_round_trip(self):
        for code in range(64):
            coords = morton_decode(code, 3, 2)
            assert coords.shape == (1, 3)
            assert int(morton_encode(coords, 2)[0]) == code

    def test_gray_scalar_round_trip(self):
        for rank in range(16):
            coords = gray_unrank(rank, 2, 2)
            assert coords.shape == (1, 2)
            assert int(gray_rank(coords, 2)[0]) == rank

    def test_zero_d_array(self):
        coords = morton_decode(np.int64(7), 2, 2)
        assert coords.shape == (1, 2)
        assert np.array_equal(coords, morton_decode(np.array(7), 2, 2))

    @pytest.mark.parametrize(
        "decode", [morton_decode, gray_unrank, hilbert_decode]
    )
    def test_2d_codes_rejected(self, decode):
        with pytest.raises(MappingError, match="scalar or 1-D"):
            decode(np.zeros((2, 2), dtype=np.int64), 2, 2)

    @pytest.mark.parametrize(
        "decode", [morton_decode, gray_unrank, hilbert_decode]
    )
    def test_negative_codes_rejected(self, decode):
        with pytest.raises(MappingError, match="non-negative"):
            decode(-1, 2, 2)
        with pytest.raises(MappingError, match="non-negative"):
            decode([3, -2], 2, 2)

    def test_vector_path_unchanged(self):
        codes = np.arange(8, dtype=np.int64)
        coords = hilbert_decode(codes, 3, 1)
        assert coords.shape == (8, 3)
        assert np.array_equal(hilbert_encode(coords, 1), codes)


class TestRequestPlanValidation:
    """2-D arrays and zero/negative lengths used to slip through."""

    def test_2d_starts_rejected(self):
        with pytest.raises(MappingError, match="1-D"):
            RequestPlan(np.zeros((2, 2), dtype=np.int64),
                        np.ones((2, 2), dtype=np.int64))

    def test_2d_lengths_rejected(self):
        with pytest.raises(MappingError, match="1-D"):
            RequestPlan(np.zeros(4, dtype=np.int64),
                        np.ones((2, 2), dtype=np.int64))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MappingError):
            RequestPlan(np.zeros(3, dtype=np.int64),
                        np.ones(2, dtype=np.int64))

    def test_zero_length_rejected(self):
        with pytest.raises(MappingError, match=">= 1"):
            RequestPlan(np.asarray([0, 8], dtype=np.int64),
                        np.asarray([4, 0], dtype=np.int64))

    def test_negative_length_rejected(self):
        with pytest.raises(MappingError, match=">= 1"):
            RequestPlan(np.asarray([0], dtype=np.int64),
                        np.asarray([-3], dtype=np.int64))

    def test_empty_plan_stays_legal(self):
        # the cache filter's all-hit miss plan and ingest's empty
        # staging plan both rely on zero-run plans constructing fine
        plan = RequestPlan(np.empty(0, dtype=np.int64),
                           np.empty(0, dtype=np.int64))
        assert plan.n_runs == 0
        assert plan.n_blocks == 0

    def test_from_arrays_trusts_caller(self):
        # the hot-path constructor skips validation by design
        starts = np.asarray([5], dtype=np.int64)
        lengths = np.asarray([2], dtype=np.int64)
        plan = RequestPlan.from_arrays(starts, lengths, "sptf", 3)
        assert plan.starts is starts
        assert plan.lengths is lengths
        assert plan.policy == "sptf"
        assert plan.merge_gap == 3

    def test_list_input_still_coerced(self):
        plan = RequestPlan([0, 10], [4, 2])
        assert plan.starts.dtype == np.int64
        assert plan.n_blocks == 6

    def test_prepare_write_rejects_empty_batch(self, make_dataset):
        ds = make_dataset(layout="naive", shape=(8, 6, 6))
        with pytest.raises(QueryError, match="at least one block"):
            ds.storage.prepare_write(ds.mapper, [], 0)
