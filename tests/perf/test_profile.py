"""Profiling probes: off by default, gated meta when enabled."""

import json

import pytest

from repro.perf.profile import PROBE_DOCS, PROBES, PerfProbes, profiled


@pytest.fixture(autouse=True)
def quiet_probes():
    yield
    PROBES.disable()
    PROBES.reset()


def test_probes_disabled_by_default():
    assert PerfProbes().enabled is False


def test_every_hook_name_is_documented():
    assert set(PROBE_DOCS) == {
        "plans_prepared", "cells_planned", "runs_prepared",
        "prepare_plan_ms", "traffic_events", "traffic_run_ms",
    }
    assert all(desc for desc in PROBE_DOCS.values())


def test_counters_and_timers():
    p = PerfProbes()
    p.count("a")
    p.count("a", 4)
    p.add_time("t", 1.5)
    with p.timer("t"):
        pass
    snap = p.snapshot()
    assert snap["counters"] == {"a": 5}
    assert snap["timers_ms"]["t"] >= 1.5
    p.reset()
    assert p.snapshot() == {"counters": {}, "timers_ms": {}}


def test_delta_drops_zero_change_names():
    p = PerfProbes()
    p.count("stale")
    mark = p.snapshot()
    p.count("fresh", 2)
    d = p.delta(mark)
    assert d == {"counters": {"fresh": 2}, "timers_ms": {}}
    assert p.delta() == {"counters": {"stale": 1, "fresh": 2},
                         "timers_ms": {}}


def test_profiled_restores_prior_state():
    assert PROBES.enabled is False
    with profiled() as p:
        assert p is PROBES
        assert PROBES.enabled is True
    assert PROBES.enabled is False
    PROBES.enable()
    with profiled(reset=False):
        pass
    assert PROBES.enabled is True


def test_report_meta_has_no_perf_key_by_default(make_dataset):
    report = make_dataset(shape=(8, 6, 6)).random_beams(axis=1, n=2).run()
    assert "perf" not in report.meta
    assert "perf" not in json.loads(report.to_json())["meta"]


def test_report_meta_gains_perf_counters_when_profiled(make_dataset):
    with profiled():
        report = (
            make_dataset(shape=(8, 6, 6)).random_beams(axis=1, n=3).run()
        )
    perf = report.meta["perf"]
    assert perf["counters"]["plans_prepared"] == 3
    assert perf["counters"]["cells_planned"] == 3 * 6
    assert perf["counters"]["runs_prepared"] >= 3
    assert perf["timers_ms"]["prepare_plan_ms"] >= 0


def test_records_identical_with_and_without_probes(make_dataset):
    off = make_dataset(shape=(8, 6, 6)).random_beams(axis=1, n=3).run()
    with profiled():
        on = make_dataset(shape=(8, 6, 6)).random_beams(axis=1, n=3).run()
    assert off.records == on.records
    meta_on = dict(on.meta)
    meta_on.pop("perf")
    assert meta_on == off.meta


def test_traffic_meta_gains_perf_when_profiled(make_dataset):
    with profiled():
        report = (
            make_dataset(shape=(8, 6, 6))
            .traffic().clients(2, queries=2).run()
        )
    perf = report.meta["perf"]
    assert perf["counters"]["traffic_events"] > 0
    assert perf["counters"]["plans_prepared"] >= 4
    assert perf["timers_ms"]["traffic_run_ms"] > 0


def test_traffic_meta_clean_by_default(make_dataset):
    report = (
        make_dataset(shape=(8, 6, 6)).traffic().clients(1, queries=2).run()
    )
    assert "perf" not in report.meta
