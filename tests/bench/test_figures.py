"""Smoke + shape tests for the figure regenerators (tiny scale)."""

import numpy as np
import pytest

from repro.bench import figures
from repro.bench.figures import Scale
from repro.bench.harness import run_figure
from repro.bench.reporting import render_fig6a, render_fig6b, render_fig8, render_table

TINY = Scale(
    name="tiny",
    chunk_dims=(216, 24, 24),
    selectivities=(1.0, 100.0),
    beam_runs=1,
    range_runs=1,
    quake_depth=5,
    quake_selectivities=(1.0,),
    olap_chunk=(148, 10, 25, 25),
    olap_runs=1,
)


class TestScales:
    def test_get_scale(self):
        assert figures.get_scale("paper").name == "paper"
        assert figures.get_scale("small").name == "small"
        with pytest.raises(ValueError):
            figures.get_scale("bogus")

    def test_paper_scale_matches_evaluation(self):
        assert figures.PAPER_SCALE.chunk_dims == (259, 259, 259)
        assert figures.PAPER_SCALE.olap_chunk == (591, 75, 25, 25)
        assert 0.01 in figures.PAPER_SCALE.selectivities
        assert 100.0 in figures.PAPER_SCALE.selectivities


class TestFig1:
    def test_seek_profile_structure(self):
        data = figures.fig1a_seek_profile(samples=1)
        assert len(data) == 2
        for payload in data.values():
            # flat settle region out to C, then growth (Figure 1(a))
            d = payload["distance"]
            t = payload["seek_ms"]
            c = payload["settle_cylinders"]
            inside = [tt for dd, tt in zip(d, t) if dd <= c]
            outside = [tt for dd, tt in zip(d, t) if dd > c]
            assert max(inside) == pytest.approx(payload["settle_ms"], rel=0.02)
            assert min(outside) > max(inside)

    def test_semi_sequential_dominance(self):
        data = figures.fig1b_semi_sequential(n=100)
        for payload in data.values():
            assert (
                payload["sequential_ms"]
                < payload["semi_sequential_ms"]
                < payload["nearby_within_D_ms"]
                < payload["random_ms"]
            )
            # §3.2's "factor of four" claim, loosely
            assert payload["nearby_over_semi"] > 2.0


class TestFig6:
    @pytest.fixture(scope="class")
    def beams(self):
        return figures.fig6a_beam(TINY)

    @pytest.fixture(scope="class")
    def ranges(self):
        return figures.fig6b_range(TINY)

    def test_beam_structure(self, beams):
        assert len(beams) == 2
        for per_mapper in beams.values():
            assert set(per_mapper) == {
                "naive", "zorder", "hilbert", "multimap"
            }

    def test_naive_and_multimap_stream_dim0(self, beams):
        for per_mapper in beams.values():
            assert per_mapper["naive"]["dim0"] < 0.5
            assert per_mapper["multimap"]["dim0"] < 0.5
            # curves are orders of magnitude slower on the primary dim
            assert per_mapper["zorder"]["dim0"] > 5 * per_mapper["naive"]["dim0"]

    def test_multimap_wins_nonprimary_beams(self, beams):
        for per_mapper in beams.values():
            for dim in ("dim1", "dim2"):
                assert (
                    per_mapper["multimap"][dim] < per_mapper["naive"][dim]
                )

    def test_range_structure(self, ranges):
        for payload in ranges.values():
            assert set(payload["speedup_vs_naive"]) == {
                "naive", "zorder", "hilbert", "multimap"
            }

    def test_all_converge_at_full_scan(self, ranges):
        for payload in ranges.values():
            sp = payload["speedup_vs_naive"]
            assert sp["zorder"][100.0] == pytest.approx(1.0, abs=0.15)
            assert sp["hilbert"][100.0] == pytest.approx(1.0, abs=0.15)
            assert sp["multimap"][100.0] == pytest.approx(1.0, abs=0.25)

    def test_render_helpers(self, beams, ranges):
        assert "beam queries" in render_fig6a(beams)
        assert "speedup" in render_fig6b(ranges)


class TestFig7:
    def test_structure_and_ordering(self):
        data = figures.fig7a_beam(TINY, seed=3)
        disks = [k for k in data if isinstance(data[k], dict)
                 and "naive" in data[k]]
        assert len(disks) == 2
        for d in disks:
            per = data[d]
            # multimap wins the non-major axes (X-major naive streams X,
            # where multimap may pay region-boundary jumps at tiny scale)
            for axis in "YZ":
                assert per["multimap"][axis] <= per["naive"][axis] * 1.1

    def test_range_totals_positive(self):
        data = figures.fig7b_range(TINY, seed=3)
        disks = [k for k in data if isinstance(data[k], dict)
                 and "naive" in data[k]]
        for d in disks:
            for series in data[d].values():
                assert all(v > 0 for v in series.values())


class TestFig8:
    @pytest.fixture(scope="class")
    def data(self):
        return figures.fig8_olap(TINY)

    def test_structure(self, data):
        for per_mapper in data.values():
            for series in per_mapper.values():
                assert set(series) == {"Q1", "Q2", "Q3", "Q4", "Q5"}

    def test_q1_ordering(self, data):
        """Q1 (major-order beam): Naive and MultiMap stream; curves pay
        two orders of magnitude (§5.5)."""
        for per_mapper in data.values():
            assert per_mapper["naive"]["Q1"] < per_mapper["zorder"]["Q1"]
            assert per_mapper["multimap"]["Q1"] < per_mapper["zorder"]["Q1"]

    def test_q2_multimap_best_or_close(self, data):
        for per_mapper in data.values():
            best = min(v["Q2"] for v in per_mapper.values())
            assert per_mapper["multimap"]["Q2"] <= best * 1.5

    def test_render(self, data):
        assert "OLAP queries" in render_fig8(data)


class TestHarness:
    def test_run_figure_dispatch(self):
        data = run_figure("fig1a", "small")
        assert len(data) == 2

    def test_run_figure_unknown(self):
        with pytest.raises(ValueError):
            run_figure("fig99", "small")

    def test_headline_summary(self):
        beams = figures.fig6a_beam(TINY)
        ranges = figures.fig6b_range(TINY)
        summary = figures.headline_summary(beams, ranges)
        for payload in summary.values():
            assert payload["beam_speedup_vs_naive_nonprimary"] > 1.0
            assert payload["dim0_streaming_advantage_vs_curves"] > 5.0

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["x", 1], ["yy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
