"""Tests for the benchmark CLI and harness plumbing."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.harness import run_all


class TestCli:
    def test_single_quick_figure(self, capsys):
        rc = main(["--scale", "small", "--figure", "fig1a", "--quiet"])
        assert rc == 0

    def test_output_directory(self, tmp_path, capsys):
        rc = main([
            "--scale", "small", "--figure", "fig1b",
            "--out", str(tmp_path), "--quiet",
        ])
        assert rc == 0
        payload = json.loads((tmp_path / "fig1b.json").read_text())
        assert payload["scale"] == "small"
        assert "data" in payload

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["--figure", "nope"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["--scale", "huge"])

    def test_table_output_printed(self, capsys):
        main(["--scale", "small", "--figure", "fig1a"])
        out = capsys.readouterr().out
        assert "fig1a" in out


class TestRunAll:
    def test_only_filter(self, capsys, tmp_path):
        results = run_all(
            "small", out_dir=tmp_path, only=("fig1a",), quiet=True
        )
        assert set(results) == {"fig1a"}
        assert (tmp_path / "fig1a.json").exists()


CACHE_QUICK = [
    "cache", "--shape", "24,8,8", "--capacities", "0,512",
    "--layouts", "naive,multimap", "--beams", "4", "--repeats", "2",
    "--drive", "minidrive", "--quiet",
]

TRAFFIC_QUICK = [
    "traffic", "--shape", "24,8,8", "--clients", "1",
    "--queries", "3", "--layouts", "naive", "--quiet",
]


class TestCacheSubcommand:
    def test_runs_and_prints_tables(self, capsys):
        rc = main(CACHE_QUICK[:-1])  # without --quiet
        assert rc == 0
        out = capsys.readouterr().out
        assert "hit ratio" in out and "multimap" in out

    def test_json_file_output(self, tmp_path, capsys):
        dest = tmp_path / "curve.json"
        rc = main(CACHE_QUICK + ["--json", str(dest)])
        assert rc == 0
        payload = json.loads(dest.read_text())
        assert set(payload["naive"]) == {"0", "512"}
        assert payload["meta"]["prefetch"] == "track"

    def test_json_directory_output(self, tmp_path, capsys):
        rc = main(CACHE_QUICK + ["--json", str(tmp_path / "sub")])
        assert rc == 0
        assert (tmp_path / "sub" / "cache.json").exists()

    def test_rejects_unknown_policy(self, capsys):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError):
            main(CACHE_QUICK + ["--policy", "nope"])


SCALE_QUICK = [
    "scale", "--shape", "24,8,8", "--shards", "1,2",
    "--layouts", "naive,multimap", "--beams", "4",
    "--drive", "minidrive", "--quiet",
]


class TestScaleSubcommand:
    def test_runs_and_prints_tables(self, capsys):
        rc = main(SCALE_QUICK[:-1])  # without --quiet
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "speedup" in out
        assert "multimap" in out

    def test_json_file_output(self, tmp_path, capsys):
        dest = tmp_path / "scale.json"
        rc = main(SCALE_QUICK + ["--json", str(dest)])
        assert rc == 0
        payload = json.loads(dest.read_text())
        assert set(payload["naive"]) == {"1", "2"}
        assert payload["meta"]["strategy"] == "disk_modulo"

    def test_json_directory_output(self, tmp_path, capsys):
        """scale routes --json through the shared writer: a non-.json
        destination is a directory receiving scale.json."""
        rc = main(SCALE_QUICK + ["--json", str(tmp_path / "sub")])
        assert rc == 0
        payload = json.loads(
            (tmp_path / "sub" / "scale.json").read_text()
        )
        assert "multimap" in payload and "meta" in payload

    def test_json_announces_path(self, tmp_path, capsys):
        """The shared writer prints the resolved path unless --quiet."""
        dest = tmp_path / "scale.json"
        rc = main(SCALE_QUICK[:-1] + ["--json", str(dest)])
        assert rc == 0
        assert f"saved {dest}" in capsys.readouterr().out

    def test_cube_aligned_strategy(self, capsys):
        rc = main(SCALE_QUICK + ["--strategy", "cube_aligned"])
        assert rc == 0

    def test_rejects_unknown_strategy(self, capsys):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(SCALE_QUICK + ["--strategy", "nope"])


class TestListFlags:
    """Registry introspection without reading source."""

    def test_list_layouts(self, capsys):
        rc = main(["--list-layouts"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registered layouts:" in out
        for name in ("naive", "zorder", "hilbert", "multimap"):
            assert name in out

    def test_list_drives(self, capsys):
        rc = main(["--list-drives"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registered drives:" in out
        assert "atlas10k3" in out and "minidrive" in out

    def test_list_strategies(self, capsys):
        rc = main(["--list-strategies"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "round_robin" in out and "cube_aligned" in out

    def test_combined_flags_skip_figures(self, capsys):
        rc = main(["--list-layouts", "--list-drives"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registered layouts:" in out
        assert "registered drives:" in out

    def test_list_policies(self, capsys):
        rc = main(["--list-policies"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registered cache policies:" in out
        for name in ("lru", "slru", "scan"):
            assert name in out

    def test_list_prefetchers(self, capsys):
        rc = main(["--list-prefetchers"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registered prefetchers:" in out
        for name in ("none", "track", "adjacent"):
            assert name in out

    def test_list_placements(self, capsys):
        rc = main(["--list-placements"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registered replica placements:" in out
        assert "rotated" in out and "locality_aligned" in out

    def test_list_read_policies(self, capsys):
        rc = main(["--list-read-policies"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registered read policies:" in out
        for name in ("primary", "round_robin", "least_loaded"):
            assert name in out

    def test_list_flags_carry_descriptions(self, capsys):
        """Cache registries hold bare classes; their docstring first
        line must still surface as the description."""
        main(["--list-policies"])
        out = capsys.readouterr().out
        assert "least-recently-used" in out.lower()


AVAIL_QUICK = [
    "avail", "--shape", "16,8,8", "--ks", "1,2", "--disks", "2",
    "--layouts", "naive,multimap", "--beams", "2",
    "--drive", "minidrive", "--quiet",
]


class TestAvailSubcommand:
    def test_runs_and_prints_tables(self, capsys):
        rc = main(AVAIL_QUICK[:-1])  # without --quiet
        assert rc == 0
        out = capsys.readouterr().out
        assert "healthy throughput" in out
        assert "degraded throughput" in out
        assert "multimap" in out

    def test_json_file_output(self, tmp_path, capsys):
        dest = tmp_path / "avail.json"
        rc = main(AVAIL_QUICK + ["--json", str(dest)])
        assert rc == 0
        payload = json.loads(dest.read_text())
        assert set(payload["naive"]) == {"1", "2"}
        assert payload["meta"]["placement"] == "rotated"

    def test_json_directory_output(self, tmp_path, capsys):
        rc = main(AVAIL_QUICK + ["--json", str(tmp_path / "sub")])
        assert rc == 0
        assert (tmp_path / "sub" / "avail.json").exists()

    def test_kill_disk_and_placement_flags(self, capsys):
        rc = main(AVAIL_QUICK + [
            "--kill-disk", "1", "--placement", "locality_aligned",
            "--read-policy", "least_loaded",
        ])
        assert rc == 0

    def test_rejects_unknown_placement(self, capsys):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(AVAIL_QUICK + ["--placement", "nope"])


class TestSharedJsonWriter:
    """Both report subcommands accept --json through one helper."""

    def test_traffic_json_flag(self, tmp_path, capsys):
        dest = tmp_path / "storm.json"
        rc = main(TRAFFIC_QUICK + ["--json", str(dest)])
        assert rc == 0
        payload = json.loads(dest.read_text())
        assert "naive" in payload and "meta" in payload

    def test_traffic_out_alias_still_works(self, tmp_path, capsys):
        rc = main(TRAFFIC_QUICK + ["--out", str(tmp_path / "dir")])
        assert rc == 0
        assert (tmp_path / "dir" / "traffic.json").exists()
