"""Tests for the benchmark CLI and harness plumbing."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.harness import run_all


class TestCli:
    def test_single_quick_figure(self, capsys):
        rc = main(["--scale", "small", "--figure", "fig1a", "--quiet"])
        assert rc == 0

    def test_output_directory(self, tmp_path, capsys):
        rc = main([
            "--scale", "small", "--figure", "fig1b",
            "--out", str(tmp_path), "--quiet",
        ])
        assert rc == 0
        payload = json.loads((tmp_path / "fig1b.json").read_text())
        assert payload["scale"] == "small"
        assert "data" in payload

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["--figure", "nope"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["--scale", "huge"])

    def test_table_output_printed(self, capsys):
        main(["--scale", "small", "--figure", "fig1a"])
        out = capsys.readouterr().out
        assert "fig1a" in out


class TestRunAll:
    def test_only_filter(self, capsys, tmp_path):
        results = run_all(
            "small", out_dir=tmp_path, only=("fig1a",), quiet=True
        )
        assert set(results) == {"fig1a"}
        assert (tmp_path / "fig1a.json").exists()
