"""Span trees and the seeded batch clock, through real executions."""

import pytest

from repro.errors import ObsError
from repro.obs import Span, Tracer


class TestSpan:
    def test_negative_duration_rejected(self):
        with pytest.raises(ObsError):
            Span("bad", "service", 0.0, -1.0)

    def test_interval_and_walk(self):
        leaf = Span("leaf", "service", 1.0, 2.0)
        root = Span("root", "query", 0.0, 5.0, children=(leaf,))
        assert root.t1_ms == 5.0
        assert [s.name for s in root.walk()] == ["root", "leaf"]

    def test_to_dict_gates_attrs_and_children(self):
        bare = Span("s", "cache", 0.0, 1.0)
        assert set(bare.to_dict()) == {"name", "cat", "t0_ms", "dur_ms"}
        rich = Span("s", "cache", 0.0, 1.0, attrs={"b": 1, "a": 2},
                    children=(bare,))
        d = rich.to_dict()
        assert list(d["attrs"]) == ["a", "b"]
        assert len(d["children"]) == 1


class TestTracer:
    def test_clock_advances_and_resets(self):
        tr = Tracer()
        tr.record(Span("q0", "query", 0.0, 3.0))
        tr.advance(3.0)
        assert tr.clock_ms == 3.0
        assert tr.n_queries == 1
        tr.reset()
        assert tr.clock_ms == 0.0 and tr.roots == []

    def test_phase_ms_sums_by_category(self):
        tr = Tracer()
        tr.record(Span("q0", "query", 0.0, 3.0, children=(
            Span("d0", "service", 0.0, 2.0),
            Span("c0", "cache", 2.0, 1.0),
        )))
        assert tr.phase_ms() == {"cache": 1.0, "query": 3.0, "service": 2.0}


class TestBatchRecording:
    def test_one_root_per_query_with_nested_phases(self, make_dataset):
        ds = make_dataset().with_telemetry()
        report = ds.random_beams(axis=1, n=3).run()
        tracer = ds.telemetry.tracer
        assert tracer.n_queries == 3
        for root in tracer.roots:
            assert root.cat == "query"
            cats = [c.cat for c in root.children]
            assert cats[0] == "prepare"
            assert cats[-1] == "service"
            # children tile the root exactly (prepare is an instant)
            assert sum(c.dur_ms for c in root.children) == pytest.approx(
                root.dur_ms
            )
            for child in root.children:
                assert child.t0_ms >= root.t0_ms
                assert child.t1_ms <= root.t1_ms + 1e-9
        assert "obs" in report.meta

    def test_batch_clock_tiles_queries(self, make_dataset):
        ds = make_dataset().with_telemetry()
        ds.random_beams(axis=2, n=4).run()
        tracer = ds.telemetry.tracer
        t = 0.0
        for root in tracer.roots:
            assert root.t0_ms == pytest.approx(t)
            t += root.dur_ms
        assert tracer.clock_ms == pytest.approx(t)

    def test_root_duration_matches_query_result(self, make_dataset):
        ds = make_dataset().with_telemetry()
        report = ds.random_beams(axis=1, n=3).run()
        durs = [root.dur_ms for root in ds.telemetry.tracer.roots]
        totals = [r.result.total_ms for r in report.records]
        assert durs == pytest.approx(totals)

    def test_cached_run_records_cache_spans(self, make_dataset):
        ds = make_dataset().with_cache(512).with_telemetry()
        # the same beam twice: the repeat is serviced from the pool
        ds.beam(1, fixed=(0, 0, 0)).beam(1, fixed=(0, 0, 0)).run()
        cats = set()
        for root in ds.telemetry.tracer.roots:
            cats.update(c.cat for c in root.children)
        assert "cache" in cats

    def test_sharded_scatter_spans_carry_disks(self, make_dataset):
        ds = make_dataset().with_shards(2).with_telemetry()
        ds.random_beams(axis=1, n=2).run()
        tracer = ds.telemetry.tracer
        assert tracer.n_queries == 2
        disks = {
            s.attrs["disk"]
            for root in tracer.roots
            for s in root.walk()
            if s.cat == "service"
        }
        assert len(disks) > 1  # both member disks serviced sub-plans

    def test_metrics_half_counts_queries(self, make_dataset):
        ds = make_dataset().with_telemetry()
        ds.random_beams(axis=1, n=3).run()
        m = ds.telemetry.metrics
        assert m.counters["queries"] == 3
        assert m.histograms["query_ms"].count == 3
        assert m.counters["spans"] == ds.telemetry.tracer.n_spans
