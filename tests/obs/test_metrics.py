"""MetricsRegistry and Histogram unit behaviour."""

import pytest

from repro.errors import ObsError
from repro.obs import DEFAULT_BUCKETS_MS, Histogram, MetricsRegistry


class TestHistogram:
    def test_rejects_empty_bounds(self):
        with pytest.raises(ObsError):
            Histogram(())

    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ObsError):
            Histogram((1.0, 1.0, 2.0))
        with pytest.raises(ObsError):
            Histogram((2.0, 1.0))

    def test_observe_tracks_totals(self):
        h = Histogram((1.0, 10.0))
        for v in (0.5, 3.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(53.5)
        assert h.min == 0.5
        assert h.max == 50.0
        assert h.counts == [1, 1]
        assert h.overflow == 1

    def test_empty_quantile_is_zero(self):
        h = Histogram((1.0,))
        assert h.quantile(0.5) == 0.0

    def test_quantile_validates_q(self):
        h = Histogram((1.0,))
        with pytest.raises(ObsError):
            h.quantile(1.5)
        with pytest.raises(ObsError):
            h.quantile(-0.1)

    def test_quantile_interpolates_within_bucket(self):
        # 4 values in (0, 10]: the median interpolates to the midpoint
        h = Histogram((10.0,))
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_overflow_interpolates_to_max(self):
        h = Histogram((1.0,))
        h.observe(100.0)
        assert h.quantile(1.0) == pytest.approx(100.0)

    def test_percentile_keys(self):
        h = Histogram(DEFAULT_BUCKETS_MS)
        h.observe(3.0)
        assert set(h.percentiles()) == {"p50", "p90", "p99", "p999"}

    def test_merge_requires_matching_bounds(self):
        with pytest.raises(ObsError):
            Histogram((1.0,)).merge(Histogram((2.0,)))
        with pytest.raises(ObsError):
            Histogram((1.0,)).merge("nope")

    def test_merge_combines_populations(self):
        a, b = Histogram((1.0, 10.0)), Histogram((1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(99.0)
        m = a.merge(b)
        assert m.count == 3
        assert m.min == 0.5 and m.max == 99.0
        assert m.counts == [1, 1] and m.overflow == 1

    def test_merge_with_empty_side_keeps_extrema(self):
        a, b = Histogram((1.0,)), Histogram((1.0,))
        a.observe(0.25)
        assert a.merge(b).min == 0.25
        assert b.merge(a).max == 0.25

    def test_to_dict_shape(self):
        h = Histogram((1.0, 2.0))
        h.observe(1.5)
        d = h.to_dict()
        assert d["count"] == 1
        assert d["buckets"] == [[1.0, 0], [2.0, 1]]
        assert d["overflow"] == 0
        assert "p999" in d


class TestMetricsRegistry:
    def test_counters_and_timers(self):
        m = MetricsRegistry()
        m.inc("q")
        m.inc("q", 2)
        m.add_time("svc_ms", 1.25)
        snap = m.snapshot()
        assert snap == {"counters": {"q": 3}, "timers_ms": {"svc_ms": 1.25}}

    def test_snapshot_gates_gauges_and_histograms(self):
        m = MetricsRegistry()
        assert set(m.snapshot()) == {"counters", "timers_ms"}
        m.gauge("depth", 4)
        m.observe("lat_ms", 2.0)
        snap = m.snapshot()
        assert snap["gauges"] == {"depth": 4.0}
        assert snap["histograms"]["lat_ms"]["count"] == 1

    def test_timer_context_accumulates(self):
        m = MetricsRegistry()
        with m.timer("block_ms"):
            pass
        assert m.timers_ms["block_ms"] >= 0.0

    def test_delta_drops_zero_change(self):
        m = MetricsRegistry()
        m.inc("a")
        base = m.snapshot()
        m.inc("b")
        d = m.delta(base)
        assert d == {"counters": {"b": 1}, "timers_ms": {}}

    def test_observe_keeps_first_bucket_layout(self):
        m = MetricsRegistry()
        m.observe("x", 1.0, buckets=(2.0,))
        m.observe("x", 3.0, buckets=(100.0,))  # layout ignored after first
        assert m.histograms["x"].bounds == (2.0,)
        assert m.histograms["x"].overflow == 1

    def test_reset_clears_everything(self):
        m = MetricsRegistry()
        m.inc("a")
        m.gauge("g", 1)
        m.observe("h", 1.0)
        m.reset()
        assert set(m.snapshot()) == {"counters", "timers_ms"}
        assert m.snapshot()["counters"] == {}
