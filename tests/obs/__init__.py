"""Telemetry (repro.obs) test suite."""
