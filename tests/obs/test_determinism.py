"""Exported traces are a pure function of (workload, seed)."""

import json

import pytest


def batch_exports(make_dataset, *, seed=42):
    ds = make_dataset(seed=seed).with_telemetry()
    ds.random_beams(axis=1, n=4).run()
    tele = ds.telemetry
    return tele.export("jsonl"), tele.export("chrome")


def traffic_exports(make_dataset, *, seed=42, slice_runs=16):
    ds = make_dataset(seed=seed).with_shards(2).with_telemetry()
    (
        ds.traffic()
        .clients(2, queries=4)
        .slice_runs(slice_runs)
        .run()
    )
    tele = ds.telemetry
    return tele.export("jsonl"), tele.export("chrome")


class TestByteIdenticalExports:
    def test_batch_same_seed_same_bytes(self, make_dataset):
        assert batch_exports(make_dataset) == batch_exports(make_dataset)

    def test_batch_different_seed_differs(self, make_dataset):
        a = batch_exports(make_dataset, seed=1)
        b = batch_exports(make_dataset, seed=2)
        assert a != b

    def test_traffic_same_seed_same_bytes(self, make_dataset):
        assert traffic_exports(make_dataset) == traffic_exports(
            make_dataset
        )

    def test_prometheus_same_seed_same_bytes(self, make_dataset):
        def one():
            ds = make_dataset().with_telemetry()
            ds.random_beams(axis=2, n=3).run()
            return ds.telemetry.export("prometheus")

        assert one() == one()


class TestObserverInvariance:
    """Attaching the observer never changes what it observes."""

    def test_traffic_json_stable_under_observer(self, make_dataset):
        def storm(attach):
            ds = make_dataset().with_shards(2)
            if attach:
                ds.with_telemetry()
            report = (
                ds.traffic().clients(3, queries=3).slice_runs(8).run()
            )
            data = json.loads(report.to_json())
            data["meta"].pop("obs", None)
            data["meta"].get("dataset", {}).pop("obs", None)
            return data

        assert storm(True) == storm(False)

    def test_interleaving_stable_across_slice_granularity(
            self, make_dataset):
        """Slice granularity changes *when* drives serve, not *what*:
        per-query serviced blocks in the trace are invariant."""

        def blocks(slice_runs):
            ds = make_dataset().with_telemetry()
            ds.traffic().clients(2, queries=3).slice_runs(
                slice_runs
            ).run()
            out = {}
            for root in ds.telemetry.tracer.roots:
                out[root.name] = sum(
                    s.attrs["blocks"] for s in root.walk()
                    if s.cat in ("service", "flush")
                )
            return out

        assert blocks(4) == blocks(None)

    def test_export_does_not_mutate_state(self, make_dataset):
        ds = make_dataset().with_telemetry()
        ds.random_beams(axis=1, n=2).run()
        tele = ds.telemetry
        first = tele.export("jsonl")
        tele.export("chrome")
        tele.export("prometheus")
        assert tele.export("jsonl") == first
