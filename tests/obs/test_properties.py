"""Property suite: histogram algebra and span-tree structure.

Histograms are checked as pure data structures under hypothesis-driven
value streams; span trees are checked over real seeded executions (the
seed is the hypothesis input), pinning the structural invariants every
consumer of a trace relies on: nesting, non-negative durations, and
durations that reconcile with the reported service time.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import Histogram

# make_dataset is a stateless factory (each call builds a fresh
# Dataset), so reusing it across generated inputs is sound
_fixture_ok = [HealthCheck.function_scoped_fixture]

values = st.lists(
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False,
              allow_infinity=False),
    max_size=60,
)

bounds = st.lists(
    st.floats(min_value=1e-3, max_value=1e4, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=12, unique=True,
).map(lambda bs: tuple(sorted(bs)))


def fill(bs, vals):
    h = Histogram(bs)
    for v in vals:
        h.observe(v)
    return h


class TestHistogramProperties:
    @given(bounds, values)
    @settings(max_examples=80, deadline=None)
    def test_count_equals_bucket_total(self, bs, vals):
        h = fill(bs, vals)
        assert h.count == len(vals)
        assert sum(h.counts) + h.overflow == h.count

    @given(bounds, values)
    @settings(max_examples=80, deadline=None)
    def test_quantiles_monotone_in_q(self, bs, vals):
        h = fill(bs, vals)
        qs = [h.quantile(q) for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)

    @given(bounds, values)
    @settings(max_examples=80, deadline=None)
    def test_quantile_bounded_by_extrema_bucket(self, bs, vals):
        h = fill(bs, vals)
        if h.count:
            hi = max(h.max, h.bounds[-1])
            # the linear interpolation may overshoot hi by one ulp
            assert h.quantile(1.0) <= hi * (1 + 1e-12) + 1e-12

    @given(bounds, values, values)
    @settings(max_examples=80, deadline=None)
    def test_merge_equals_observing_concatenation(self, bs, a, b):
        merged = fill(bs, a).merge(fill(bs, b))
        both = fill(bs, a + b)
        assert merged.counts == both.counts
        assert merged.overflow == both.overflow
        assert merged.count == both.count
        assert merged.min == both.min and merged.max == both.max
        # float addition is non-associative across the two orders
        assert math.isclose(merged.sum, both.sum, rel_tol=1e-9,
                            abs_tol=1e-9)


class TestQuantileCdfProperties:
    """The arbitrary-q quantile / CDF pair the SLO rules build on."""

    @given(bounds, values,
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_quantile_accepts_arbitrary_q(self, bs, vals, q):
        h = fill(bs, vals)
        v = h.quantile(q)
        assert v >= 0.0
        assert h.quantile(0.0) <= v * (1 + 1e-12) + 1e-12

    @given(bounds, values,
           st.floats(min_value=0.0, max_value=2e4, allow_nan=False),
           st.floats(min_value=0.0, max_value=2e4, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_fraction_le_is_a_cdf(self, bs, vals, a, b):
        h = fill(bs, vals)
        fa, fb = h.fraction_le(a), h.fraction_le(b)
        assert 0.0 <= fa <= 1.0 and 0.0 <= fb <= 1.0
        if a <= b:
            assert fa <= fb + 1e-12
        else:
            assert fb <= fa + 1e-12

    @given(bounds, values)
    @settings(max_examples=80, deadline=None)
    def test_fraction_le_exact_at_bucket_edges(self, bs, vals):
        h = fill(bs, vals)
        if not h.count:
            return
        cum = 0
        for bound, c in zip(h.bounds, h.counts):
            cum += c
            assert h.fraction_le(bound) == pytest.approx(
                cum / h.count)

    @given(bounds, values,
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_round_trip_recovers_q(self, bs, vals, q):
        h = fill(bs, vals)
        if not h.count:
            return
        assert h.fraction_le(h.quantile(q)) >= q - 1e-9

    @given(st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
           st.integers(min_value=1, max_value=40),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_single_bucket_interpolates_linearly(self, b, n, q):
        h = fill((b,), [b * 0.5] * n)
        # all mass in (0, b]: the interpolated q-quantile is b*q
        assert h.quantile(q) == pytest.approx(b * q)

    @given(bounds, values)
    @settings(max_examples=40, deadline=None)
    def test_percentiles_labels_and_monotonicity(self, bs, vals):
        h = fill(bs, vals)
        summary = h.percentiles(qs=(0.10, 0.50, 0.90))
        assert list(summary) == ["p10", "p50", "p90"]
        got = list(summary.values())
        assert got == sorted(got)
        assert summary["p50"] == h.quantile(0.5)


class TestSpanTreeProperties:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=_fixture_ok)
    def test_batch_trees_nest_and_reconcile(self, make_dataset, seed):
        ds = make_dataset(seed=seed).with_telemetry()
        report = ds.random_beams(axis=1, n=3).run()
        roots = ds.telemetry.tracer.roots
        assert len(roots) == len(report.records)
        for root, rec in zip(roots, report.records):
            for span in root.walk():
                assert span.dur_ms >= 0.0
                for child in span.children:
                    assert child.t0_ms >= span.t0_ms - 1e-9
                    assert child.t1_ms <= span.t1_ms + 1e-9
            # phase durations sum to the reported service time
            assert sum(
                c.dur_ms for c in root.children
            ) == pytest.approx(rec.result.total_ms)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=_fixture_ok)
    def test_traffic_trees_nest_within_latency(self, make_dataset, seed):
        ds = make_dataset(seed=seed).with_shards(2).with_telemetry()
        report = ds.traffic().clients(2, queries=3).slice_runs(8).run()
        by_name = {r.name: r for r in ds.telemetry.tracer.roots}
        for trace in report.traces:
            root = by_name[f"{trace.client}#{trace.index}"]
            for span in root.walk():
                assert span.t0_ms >= root.t0_ms - 1e-9
                assert span.t1_ms <= root.t1_ms + 1e-9
            svc = sum(
                s.dur_ms for s in root.walk()
                if s.cat in ("service", "flush")
            )
            assert svc == pytest.approx(trace.service_ms)
