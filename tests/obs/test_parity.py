"""Zero-impact observer: attached telemetry never changes results.

Two pins:

* **bit-identity** — batch Report JSON, traffic JSON, and ingest JSON
  are byte-identical with and without an attached Telemetry (modulo the
  gated ``meta["obs"]`` key, which only ever *adds*);
* **reconciliation** — the span trees re-derive the aggregate numbers:
  root durations sum to the batch total, per-query service/flush spans
  match the traces' service accounting, and mechanical attribution
  inside each service span sums to its duration.
"""

import json

import pytest


def strip_obs(payload: str) -> dict:
    """Drop the two gated keys an attached Telemetry *adds* (the
    recordings and the dataset spec); everything else must match."""
    data = json.loads(payload)
    meta = data.get("meta", {})
    meta.pop("obs", None)
    meta.get("dataset", {}).pop("obs", None)
    return data


class TestBitIdentity:
    def test_batch_report_identical(self, make_dataset):
        plain = make_dataset().random_beams(axis=1, n=4).run()
        traced = (
            make_dataset().with_telemetry()
            .random_beams(axis=1, n=4).run()
        )
        assert strip_obs(traced.to_json()) == json.loads(plain.to_json())

    def test_traffic_json_identical(self, make_dataset):
        def storm(attach):
            ds = make_dataset()
            if attach:
                ds.with_telemetry()
            return ds.traffic().clients(3, queries=4).run().to_json()

        assert strip_obs(storm(True)) == json.loads(storm(False))

    def test_traffic_with_failover_identical(self, make_dataset):
        def storm(attach):
            ds = make_dataset().with_shards(2).with_replication(2)
            if attach:
                ds.with_telemetry()
            return (
                ds.traffic()
                .clients(2, queries=4)
                .kill(5.0, 0)
                .run()
                .to_json()
            )

        assert strip_obs(storm(True)) == json.loads(storm(False))

    def test_ingest_report_identical(self, make_dataset):
        def run(attach):
            ds = make_dataset(layout="zorder", shape=(16, 8, 8), seed=7)
            if attach:
                ds.with_telemetry()
            return ds.ingest(
                stream="clustered", n_points=256, flush_points=64,
                loader_opts={"points_per_cell": 1}, reorganize=True,
            ).run().to_json()

        assert run(True) == run(False)

    def test_metrics_only_is_also_zero_impact(self, make_dataset):
        plain = make_dataset().random_beams(axis=2, n=3).run()
        traced = (
            make_dataset().with_telemetry(trace=False, metrics=True)
            .random_beams(axis=2, n=3).run()
        )
        assert strip_obs(traced.to_json()) == json.loads(plain.to_json())


class TestReconciliation:
    def test_batch_roots_sum_to_report_total(self, make_dataset):
        ds = make_dataset().with_cache(256).with_telemetry()
        report = ds.random_beams(axis=1, n=5).run()
        roots = ds.telemetry.tracer.roots
        assert sum(r.dur_ms for r in roots) == pytest.approx(
            report.total_ms
        )

    def test_service_span_attribution_sums_to_duration(self, make_dataset):
        ds = make_dataset().with_telemetry()
        ds.random_beams(axis=1, n=4).run()
        spans = [
            s
            for root in ds.telemetry.tracer.roots
            for s in root.walk()
            if s.cat == "service"
        ]
        assert spans
        for s in spans:
            mech = (s.attrs["seek_ms"] + s.attrs["rotation_ms"]
                    + s.attrs["transfer_ms"] + s.attrs["switch_ms"])
            # mechanical attribution accounts for the span up to the
            # drive's fixed per-request command overhead
            assert mech == pytest.approx(s.dur_ms, rel=0.05, abs=1.0)

    def test_traffic_spans_match_trace_service(self, make_dataset):
        ds = make_dataset().with_telemetry()
        report = ds.traffic().clients(2, queries=4).run()
        by_name = {root.name: root for root in ds.telemetry.tracer.roots}
        assert len(by_name) == len(report.traces)
        for trace in report.traces:
            root = by_name[f"{trace.client}#{trace.index}"]
            svc = sum(
                s.dur_ms for s in root.walk()
                if s.cat in ("service", "flush")
            )
            assert svc == pytest.approx(trace.service_ms)
            assert root.dur_ms == pytest.approx(trace.latency_ms)
            assert root.t0_ms == pytest.approx(trace.arrival_ms)

    def test_traffic_phase_totals_match_drive_busy(self, make_dataset):
        ds = make_dataset().with_shards(2).with_telemetry()
        report = ds.traffic().clients(2, queries=4).run()
        busy = sum(d.busy_ms for d in report.drives)
        phases = ds.telemetry.tracer.phase_ms()
        spans_busy = phases.get("service", 0.0) + phases.get("flush", 0.0)
        assert spans_busy == pytest.approx(busy)
