"""The Telemetry handle and its carriage across dataset rebuilds."""

import pytest

from repro.errors import ObsError
from repro.obs import Telemetry


class TestConstruction:
    def test_needs_at_least_one_half(self):
        with pytest.raises(ObsError):
            Telemetry(trace=False, metrics=False)

    def test_unknown_exporter_fails_fast(self):
        with pytest.raises(Exception):
            Telemetry(exporter="nope")

    def test_halves_are_optional(self):
        t = Telemetry(trace=True, metrics=False)
        assert t.tracer is not None and t.metrics is None
        m = Telemetry(trace=False, metrics=True)
        assert m.tracer is None and m.metrics is not None
        assert t.active and m.active

    def test_describe_gates_halves(self):
        t = Telemetry(trace=True, metrics=False)
        assert set(t.describe()) == {"trace"}
        m = Telemetry(trace=False, metrics=True, exporter="jsonl")
        assert set(m.describe()) == {"metrics", "exporter"}


class TestFacade:
    def test_attach_detach(self, make_dataset):
        ds = make_dataset()
        assert ds.telemetry is None
        ds.with_telemetry()
        assert ds.telemetry is not None
        ds.with_telemetry(trace=False, metrics=False)
        assert ds.telemetry is None

    def test_meta_obs_gated(self, make_dataset):
        plain = make_dataset().random_beams(axis=1, n=2).run()
        assert "obs" not in plain.meta
        traced = (
            make_dataset().with_telemetry().random_beams(axis=1, n=2).run()
        )
        assert traced.meta["obs"]["trace"]["n_queries"] == 2

    def test_describe_carries_spec(self, make_dataset):
        ds = make_dataset().with_telemetry(exporter="chrome")
        assert ds.describe()["obs"] == {
            "trace": True, "metrics": True, "exporter": "chrome",
        }
        ds.with_telemetry(trace=False, metrics=False)
        assert "obs" not in ds.describe()

    def test_with_shards_keeps_the_same_handle(self, make_dataset):
        ds = make_dataset().with_telemetry()
        tele = ds.telemetry
        ds.random_beams(axis=1, n=1).run()
        ds.with_shards(2)
        assert ds.telemetry is tele  # recordings span the rebuild
        ds.random_beams(axis=1, n=1).run()
        assert tele.tracer.n_queries == 2

    def test_with_replication_keeps_the_same_handle(self, make_dataset):
        ds = make_dataset().with_telemetry().with_shards(2)
        tele = ds.telemetry
        ds.with_replication(2)
        assert ds.telemetry is tele

    def test_with_layout_clone_gets_fresh_telemetry(self, make_dataset):
        ds = make_dataset().with_telemetry(exporter="jsonl")
        ds.random_beams(axis=1, n=1).run()
        clone = ds.with_layout("zorder")
        assert clone.telemetry is not None
        assert clone.telemetry is not ds.telemetry
        assert clone.telemetry.exporter == "jsonl"
        assert clone.telemetry.tracer.n_queries == 0

    def test_traffic_meta_carries_obs(self, make_dataset):
        ds = make_dataset().with_telemetry()
        report = (
            ds.traffic().clients(2, queries=3).run()
        )
        obs = report.meta["obs"]
        assert obs["trace"]["n_queries"] == 6
        assert obs["metrics"]["counters"]["queries"] == 6


class TestIngestSpans:
    def test_flush_spans_recorded(self, make_dataset):
        ds = make_dataset(layout="zorder").with_telemetry()
        ds.ingest(stream="uniform", n_points=128, flush_points=64).run()
        cats = ds.telemetry.tracer.phase_ms()
        assert "flush" in cats and cats["flush"] > 0

    def test_reorg_span_recorded(self, make_dataset):
        # one point per cell forces overflow chains, so the reorganise
        # pass has real folding work to record
        ds = make_dataset(layout="zorder", shape=(16, 8, 8), seed=7)
        ds.with_telemetry()
        report = ds.ingest(
            stream="clustered", n_points=256, flush_points=64,
            loader_opts={"points_per_cell": 1}, reorganize=True,
        ).run()
        assert report.reorg is not None
        reorgs = [
            r for r in ds.telemetry.tracer.roots if r.cat == "reorg"
        ]
        assert len(reorgs) == 1
        span = reorgs[0]
        assert span.dur_ms == pytest.approx(report.reorg["reorg_ms"])
        assert span.attrs["pages_freed"] == report.reorg["pages_freed"]
