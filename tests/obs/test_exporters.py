"""The exporter registry and the three builtin renderers."""

import json

import pytest

from repro.errors import ObsError
from repro.obs import (
    EXPORTERS,
    Telemetry,
    exporter_names,
    register_exporter,
)
from repro.obs.span import Span


def traced_telemetry() -> Telemetry:
    tele = Telemetry()
    root = Span("q0", "query", 0.0, 3.0, attrs={"cells": 4}, children=(
        Span("prepare", "prepare", 0.0, 0.0),
        Span("disk 0", "service", 0.0, 3.0, attrs={"disk": 0}),
    ))
    tele.observe_query(root, advance=True)
    return tele


class TestRegistry:
    def test_builtins_registered(self):
        assert {"jsonl", "chrome", "prometheus"} <= set(exporter_names())

    def test_register_exporter_uses_docstring(self):
        @register_exporter("zz-null-test")
        def export_null(telemetry):
            """does nothing, for the registry test"""
            return ""

        entry = EXPORTERS.get("zz-null-test")
        assert entry.description == "does nothing, for the registry test"
        assert entry.fn is export_null

    def test_unknown_exporter_errors(self):
        with pytest.raises(Exception, match="unknown exporter"):
            EXPORTERS.get("missing")


class TestJsonl:
    def test_depth_first_stable_ids(self):
        text = traced_telemetry().export("jsonl")
        rows = [json.loads(line) for line in text.splitlines()]
        assert [r["id"] for r in rows] == [0, 1, 2]
        assert [r["parent"] for r in rows] == [None, 0, 0]
        assert all(r["query"] == 0 for r in rows)
        assert rows[0]["attrs"] == {"cells": 4}
        assert "attrs" not in rows[1]  # gated, like Span.to_dict

    def test_requires_tracer(self):
        tele = Telemetry(trace=False, metrics=True)
        with pytest.raises(ObsError, match="needs span traces"):
            tele.export("jsonl")

    def test_empty_trace_is_empty_text(self):
        assert Telemetry().export("jsonl") == ""


class TestChrome:
    def test_trace_event_schema(self):
        doc = json.loads(traced_telemetry().export("chrome"))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 3
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["pid"] == 1
            assert set(ev) >= {"name", "cat", "ts", "dur", "tid", "args"}
        # µs timestamps; disk-bound spans land on their drive's row
        root = next(e for e in events if e["cat"] == "query")
        svc = next(e for e in events if e["cat"] == "service")
        assert root["dur"] == 3000.0
        assert root["tid"] == 0
        assert svc["tid"] == 1


class TestPrometheus:
    def test_exposition_format(self):
        tele = traced_telemetry()
        text = tele.export("prometheus")
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_queries_total 1" in text
        assert "repro_service_ms 3.0" in text
        assert '_bucket{le="+Inf"} 1' in text
        assert "repro_query_ms_count 1" in text

    def test_requires_metrics(self):
        tele = Telemetry(trace=True, metrics=False)
        with pytest.raises(ObsError, match="needs metrics"):
            tele.export("prometheus")

    def test_name_sanitisation(self):
        tele = Telemetry()
        tele.metrics.inc("weird name-1")
        assert "repro_weird_name_1_total" in tele.export("prometheus")


class TestExportTrace:
    def test_no_name_no_default_errors(self):
        with pytest.raises(ObsError, match="no exporter named"):
            Telemetry().export()

    def test_attached_default_used(self):
        tele = Telemetry(exporter="jsonl")
        assert tele.export() == ""

    def test_writes_path_with_parents(self, tmp_path):
        tele = traced_telemetry()
        out = tmp_path / "deep" / "trace.json"
        text = tele.export("chrome", path=out)
        assert out.read_text() == text
