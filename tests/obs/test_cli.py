"""The ``trace`` subcommand and the exporter listing."""

import json

import pytest

from repro.bench.cli import main

TRACE_QUICK = [
    "trace", "--shape", "24,12,12", "--clients", "2",
    "--queries", "3", "--drive", "minidrive",
]


class TestListExporters:
    def test_lists_builtins(self, capsys):
        assert main(["--list-exporters"]) == 0
        out = capsys.readouterr().out
        assert "registered trace exporters:" in out
        for name in ("jsonl", "chrome", "prometheus"):
            assert name in out

    def test_combines_with_other_listings(self, capsys):
        assert main(["--list-exporters", "--list-probes"]) == 0
        out = capsys.readouterr().out
        assert "registered perf probes:" in out
        assert "registered trace exporters:" in out


class TestTraceCommand:
    def test_renders_summary(self, capsys):
        assert main(TRACE_QUICK + ["--top", "2", "--bins", "8"]) == 0
        out = capsys.readouterr().out
        assert "slowest 2 queries" in out
        assert "phase totals (ms):" in out
        assert "disk utilization" in out

    def test_quiet_suppresses_table(self, capsys):
        assert main(TRACE_QUICK + ["--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_export_to_stdout(self, capsys):
        assert main(TRACE_QUICK + ["--quiet", "--export", "jsonl"]) == 0
        out = capsys.readouterr().out
        rows = [json.loads(line) for line in out.splitlines()]
        assert rows and rows[0]["id"] == 0

    def test_export_to_file(self, tmp_path, capsys):
        dest = tmp_path / "trace.json"
        assert main(TRACE_QUICK + [
            "--export", "chrome", "--trace-out", str(dest),
        ]) == 0
        doc = json.loads(dest.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"]
        assert f"wrote chrome trace to {dest}" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        dest = tmp_path / "report.json"
        assert main(TRACE_QUICK + [
            "--quiet", "--json", str(dest),
        ]) == 0
        data = json.loads(dest.read_text())
        assert data["obs"]["trace"]["n_queries"] == 6
        assert data["slowest"]
        assert data["utilization"]["busy"]

    @pytest.mark.parametrize("top", ["0", "-3", "two"])
    def test_rejects_non_positive_top(self, top, capsys):
        with pytest.raises(SystemExit) as exc:
            main(TRACE_QUICK + ["--top", top])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--top" in err

    def test_top_one_is_accepted(self, capsys):
        assert main(TRACE_QUICK + ["--top", "1"]) == 0
        assert "slowest 1 queries" in capsys.readouterr().out

    def test_sharded_trace(self, capsys):
        assert main([
            "trace", "--shape", "24,12,12", "--clients", "2",
            "--queries", "3", "--drive", "minidrive",
            "--layout", "zorder", "--arrival", "poisson",
            "--rate", "100", "--bins", "6",
        ]) == 0
        assert "zorder" in capsys.readouterr().out
