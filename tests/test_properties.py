"""Cross-module property tests: end-to-end invariants under hypothesis.

These tie the whole stack together: random datasets, random disks, random
queries — asserting the invariants that make the reproduction trustworthy
(bijective placement, exact fetch coverage, semi-sequential timing, and
equivalence of the two MultiMap implementations).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MultiMapMapper, map_cell
from repro.disk import DiskDrive, synthetic_disk
from repro.lvm import LogicalVolume
from repro.mappings import (
    GrayMapper,
    HilbertMapper,
    NaiveMapper,
    ZOrderMapper,
)
from repro.mappings.base import enumerate_box
from repro.query import StorageManager


def random_disk(rng):
    spt = int(rng.integers(60, 200))
    return synthetic_disk(
        "prop",
        rpm=float(rng.integers(7200, 15000)),
        settle_ms=float(rng.uniform(0.5, 1.5)),
        settle_cylinders=int(rng.integers(4, 16)),
        surfaces=int(rng.integers(1, 5)),
        zone_specs=[(int(rng.integers(100, 300)), spt),
                    (int(rng.integers(100, 300)), max(spt - 20, 30))],
        command_overhead_ms=float(rng.uniform(0.0, 0.3)),
    )


@st.composite
def disk_and_dims(draw):
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    model = random_disk(rng)
    n_dims = draw(st.integers(min_value=2, max_value=4))
    dims = tuple(int(rng.integers(2, 14)) for _ in range(n_dims))
    return model, dims, seed


class TestEndToEndInvariants:
    @given(case=disk_and_dims())
    @settings(max_examples=20, deadline=None)
    def test_multimap_closed_form_equals_figure5(self, case):
        model, dims, seed = case
        vol = LogicalVolume([model])
        try:
            mm = MultiMapMapper(dims, vol)
        except Exception:
            return  # dataset may not fit tiny random disks
        adj = vol.adjacency[0]
        rng = np.random.default_rng(seed)
        anchor = mm.first_lbn_of_cube((0,) * len(dims))
        cell = tuple(int(rng.integers(0, k)) for k in mm.K)
        assert int(mm.lbns(np.array([cell]))[0]) == map_cell(
            adj, anchor, cell, mm.K
        )

    @given(case=disk_and_dims())
    @settings(max_examples=20, deadline=None)
    def test_all_mappers_place_bijectively(self, case):
        model, dims, seed = case
        n = int(np.prod(dims))
        coords = enumerate_box((0,) * len(dims), dims)
        for cls in (NaiveMapper, ZOrderMapper, HilbertMapper, GrayMapper):
            vol = LogicalVolume([model])
            mapper = cls(dims, vol.allocate_blocks(0, n))
            assert np.unique(mapper.lbns(coords)).size == n

    @given(case=disk_and_dims())
    @settings(max_examples=15, deadline=None)
    def test_range_plans_fetch_exact_cells(self, case):
        model, dims, seed = case
        rng = np.random.default_rng(seed)
        lo = tuple(int(rng.integers(0, s)) for s in dims)
        hi = tuple(
            int(rng.integers(l + 1, s + 1)) for l, s in zip(lo, dims)
        )
        n_box = int(np.prod([b - a for a, b in zip(lo, hi)]))
        vol = LogicalVolume([model])
        naive = NaiveMapper(dims, vol.allocate_blocks(0, int(np.prod(dims))))
        assert naive.range_plan(lo, hi).n_blocks == n_box
        try:
            volm = LogicalVolume([model])
            mm = MultiMapMapper(dims, volm)
        except Exception:
            return
        assert mm.range_plan(lo, hi).n_blocks == n_box

    @given(case=disk_and_dims())
    @settings(max_examples=10, deadline=None)
    def test_query_times_are_finite_and_positive(self, case):
        model, dims, seed = case
        rng = np.random.default_rng(seed)
        vol = LogicalVolume([model])
        naive = NaiveMapper(dims, vol.allocate_blocks(0, int(np.prod(dims))))
        sm = StorageManager(vol)
        res = sm.range(naive, (0,) * len(dims), dims, rng=rng)
        assert np.isfinite(res.total_ms)
        assert res.total_ms > 0

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_semi_sequential_always_beats_random_within_d(self, seed):
        """The adjacency model's reason to exist, on random disks."""
        rng = np.random.default_rng(seed)
        model = random_disk(rng)
        from repro.disk import AdjacencyModel

        adj = AdjacencyModel.for_model(model)
        n = 50
        drive = DiskDrive(model)
        path = adj.semi_sequential_path(0, n, 1)
        semi = drive.service_lbns(path, policy="fifo").total_ms

        geom = model.geometry
        drive2 = DiskDrive(model)
        tracks = geom.track_of(0) + rng.integers(1, adj.D + 1, size=n)
        sectors = rng.integers(0, geom.track_length(0), size=n)
        nearby = drive2.service_lbns(
            geom.lbns_from(tracks, sectors), policy="fifo"
        ).total_ms
        assert semi < nearby
