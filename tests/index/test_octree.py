"""Tests for the region octree substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError
from repro.index import Octree, OctreeLeaf


def uniform_tree(depth=3, level=2):
    return Octree(depth, lambda x, y, z, side: level)


def layered_tree(depth=4):
    side = 1 << depth

    def level_fn(x, y, z, box_side):
        return depth if z < side // 2 else depth - 2

    return Octree(depth, level_fn)


class TestConstruction:
    def test_uniform_leaf_count(self):
        tree = uniform_tree(depth=3, level=2)
        assert tree.n_leaves == 8 ** 2

    def test_full_depth_leaf_count(self):
        tree = uniform_tree(depth=3, level=3)
        assert tree.n_leaves == 8 ** 3

    def test_root_only(self):
        tree = uniform_tree(depth=3, level=0)
        assert tree.n_leaves == 1

    def test_depth_bounds(self):
        with pytest.raises(DatasetError):
            Octree(0, lambda *a: 0)
        with pytest.raises(DatasetError):
            Octree(13, lambda *a: 0)

    def test_leaves_partition_space(self):
        """Leaf volumes must sum to the whole cube with no overlap."""
        tree = layered_tree(4)
        origins = tree.leaf_origins()
        total = (origins[:, 3] ** 3).sum()
        assert total == (1 << 4) ** 3

    def test_levels_histogram(self):
        tree = layered_tree(4)
        hist = tree.levels_histogram()
        assert 4 in hist and 2 in hist
        assert sum(hist.values()) == tree.n_leaves


class TestLookup:
    def test_find_leaf_fine_region(self):
        tree = layered_tree(4)
        leaf = tree.find_leaf(3, 5, 2)  # z < 8: fine half
        assert leaf.level == 4
        assert (leaf.ix, leaf.iy, leaf.iz) == (3, 5, 2)

    def test_find_leaf_coarse_region(self):
        tree = layered_tree(4)
        leaf = tree.find_leaf(3, 5, 12)
        assert leaf.level == 2

    def test_find_leaf_out_of_bounds(self):
        with pytest.raises(DatasetError):
            layered_tree(4).find_leaf(16, 0, 0)

    def test_leaf_extent(self):
        leaf = OctreeLeaf(2, 1, 2, 3)
        origin, side = leaf.extent(depth=4)
        assert side == 4
        assert origin == (4, 8, 12)


class TestBoxQueries:
    def test_box_inside_fine_region(self):
        tree = layered_tree(4)
        idx = tree.leaves_in_box((0, 0, 0), (4, 4, 4))
        assert idx.size == 64  # all finest leaves

    def test_box_spanning_levels(self):
        tree = layered_tree(4)
        idx = tree.leaves_in_box((0, 0, 6), (4, 4, 10))
        levels = np.unique(tree.leaves()[idx, 0])
        assert set(levels.tolist()) == {2, 4}

    def test_whole_domain(self):
        tree = layered_tree(4)
        idx = tree.leaves_in_box((0, 0, 0), (16, 16, 16))
        assert idx.size == tree.n_leaves

    def test_beam_line_ordering(self):
        tree = layered_tree(4)
        idx = tree.leaves_on_line(2, (0, 0))  # along z at x=y=0
        origins = tree.leaf_origins()[idx]
        assert (np.diff(origins[:, 2]) > 0).all()

    def test_beam_covers_line(self):
        tree = layered_tree(4)
        idx = tree.leaves_on_line(0, (7, 9))
        origins = tree.leaf_origins()[idx]
        covered = (origins[:, 3]).sum()
        assert covered == 16  # the full x extent

    def test_beam_bad_axis(self):
        with pytest.raises(DatasetError):
            layered_tree(4).leaves_on_line(3, (0, 0))


class TestUniformRegions:
    def test_uniform_tree_is_one_region(self):
        tree = uniform_tree(depth=3, level=2)
        regions = tree.uniform_regions()
        assert len(regions) == 1
        assert regions[0]["origin"] == (0, 0, 0)
        assert regions[0]["leaf_level"] == 2

    def test_layered_tree_regions_have_single_levels(self):
        tree = layered_tree(4)
        for region in tree.uniform_regions():
            idx = region["leaf_indices"]
            levels = np.unique(tree.leaves()[idx, 0])
            assert levels.size == 1

    def test_regions_cover_all_leaves(self):
        tree = layered_tree(4)
        covered = np.concatenate(
            [r["leaf_indices"] for r in tree.uniform_regions()]
        )
        assert np.unique(covered).size == tree.n_leaves

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_property_find_leaf_consistent_with_boxes(self, seed):
        tree = layered_tree(3)
        rng = np.random.default_rng(seed)
        x, y, z = (int(rng.integers(0, 8)) for _ in range(3))
        leaf = tree.find_leaf(x, y, z)
        idx = tree.leaves_in_box((x, y, z), (x + 1, y + 1, z + 1))
        assert idx.size == 1
        row = tree.leaves()[int(idx[0])]
        assert OctreeLeaf(*map(int, row)) == leaf
