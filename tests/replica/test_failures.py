"""Failure injection: schedules, determinism, and degraded traffic."""

import pytest

from repro.api import Dataset
from repro.errors import QueryError, ReplicaError
from repro.replica import FailureEvent, FailureInjector, FailureSchedule
from repro.traffic import QueryMix, TrafficConfig, TrafficSim
from repro.traffic.clients import TrafficClient

SHAPE = (24, 12, 12)


def build(small_model, *, n=3, k=2, seed=9, layout="multimap", **opts):
    return Dataset.create(
        SHAPE, layout=layout, drive=small_model, seed=seed,
    ).with_shards(n).with_replication(k, **opts)


class TestInjector:
    def test_pick_disk_deterministic(self):
        a = FailureInjector(8, seed=3)
        b = FailureInjector(8, seed=3)
        assert [a.pick_disk() for _ in range(10)] == \
            [b.pick_disk() for _ in range(10)]

    def test_pick_disk_respects_exclusions(self):
        inj = FailureInjector(3, seed=0)
        assert inj.pick_disk(exclude=(0, 1)) == 2
        with pytest.raises(ReplicaError, match="no disk left"):
            inj.pick_disk(exclude=(0, 1, 2))

    def test_kill_and_revive_roundtrip(self, small_model):
        ds = build(small_model)
        inj = FailureInjector(3, seed=4)
        dead = inj.kill(ds.storage)
        assert dead in ds.storage.failed
        inj.revive(ds.storage, dead)
        assert not ds.storage.failed

    def test_schedule_builder(self):
        inj = FailureInjector(4, seed=1)
        inj.schedule_kill(10.0, disk=2, revive_at_ms=50.0)
        inj.schedule_kill(20.0, disk=0)
        sched = inj.schedule
        assert [ev.action for ev in sched] == ["kill", "kill", "revive"]
        assert [ev.t_ms for ev in sched] == [10.0, 20.0, 50.0]

    def test_schedule_kill_draws_victim(self):
        a = FailureInjector(6, seed=11).schedule_kill(5.0).schedule
        b = FailureInjector(6, seed=11).schedule_kill(5.0).schedule
        assert a.events == b.events

    def test_revive_must_follow_kill(self):
        inj = FailureInjector(2, seed=0)
        with pytest.raises(ReplicaError, match="revive"):
            inj.schedule_kill(10.0, disk=0, revive_at_ms=5.0)


class TestSchedule:
    def test_events_sorted_and_validated(self):
        sched = FailureSchedule((
            FailureEvent(20.0, "revive", 1),
            FailureEvent(5.0, "kill", 1),
        ))
        assert [ev.t_ms for ev in sched.events] == [5.0, 20.0]
        with pytest.raises(ReplicaError, match="unknown failure action"):
            FailureEvent(1.0, "explode", 0)
        with pytest.raises(ReplicaError):
            FailureEvent(-1.0, "kill", 0)

    def test_coerce_forms(self):
        sched = FailureSchedule((FailureEvent(1.0, "kill", 0),))
        assert FailureSchedule.coerce(sched) is sched
        from_tuples = FailureSchedule.coerce([(1.0, "kill", 0)])
        assert from_tuples.events == sched.events
        inj = FailureInjector(2, seed=0).schedule_kill(1.0, disk=0)
        assert FailureSchedule.coerce(inj).events == sched.events

    def test_describe_round_trips_json(self):
        import json

        sched = FailureSchedule((FailureEvent(1.5, "kill", 2),))
        payload = json.loads(json.dumps(sched.describe()))
        assert payload["events"][0] == {
            "t_ms": 1.5, "action": "kill", "disk": 2,
        }


class TestDegradedTraffic:
    def run_with_kill(self, ds, *, at_ms=5.0, disk=1, revive_at_ms=None,
                      clients=2, queries=6):
        return (
            ds.traffic()
            .clients(clients, mix=QueryMix.beams(1, 2), queries=queries)
            .slice_runs(8)
            .kill(at_ms, disk, revive_at_ms=revive_at_ms)
            .run()
        )

    def test_every_query_completes(self, small_model):
        report = self.run_with_kill(build(small_model))
        assert len(report.traces) == 12
        assert report.meta["failures"]["schedule"] == [
            {"t_ms": 5.0, "action": "kill", "disk": 1},
        ]
        assert report.meta["replicas"]["failed"] == [1]

    def test_redispatch_counted(self, small_model):
        report = self.run_with_kill(build(small_model), at_ms=2.0)
        assert report.meta["failures"]["redispatched_subs"] >= 1
        assert report.meta["replicas"]["stats"]["failovers"] >= 1

    def test_seeded_runs_bit_identical(self, small_model):
        r1 = self.run_with_kill(build(small_model, seed=17))
        r2 = self.run_with_kill(build(small_model, seed=17))
        assert r1.to_json() == r2.to_json()

    def test_kill_and_revive_completes(self, small_model):
        report = self.run_with_kill(
            build(small_model), at_ms=3.0, revive_at_ms=60.0, queries=8,
        )
        assert len(report.traces) == 16
        events = report.meta["failures"]["schedule"]
        assert [ev["action"] for ev in events] == ["kill", "revive"]

    def test_failure_free_run_has_no_failure_meta(self, small_model):
        ds = build(small_model)
        report = (
            ds.traffic()
            .clients(2, mix=QueryMix.beams(1, 2), queries=4)
            .run()
        )
        assert "failures" not in report.meta
        assert report.meta["replicas"]["k"] == 2

    def test_failures_method_accepts_schedule(self, small_model):
        ds = build(small_model)
        sched = FailureInjector(3, seed=2).schedule_kill(4.0, disk=0)
        report = (
            ds.traffic()
            .clients(2, mix=QueryMix.beams(1, 2), queries=4)
            .failures(sched)
            .run()
        )
        assert len(report.traces) == 8
        assert report.meta["failures"]["schedule"][0]["disk"] == 0

    def test_unreplicated_client_failure_raises(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=5).with_shards(3)
        with pytest.raises(QueryError, match="no replicas"):
            (
                ds.traffic()
                .clients(2, mix=QueryMix.beams(1, 2), queries=6)
                .kill(2.0, 1)
                .run()
            )

    def test_k1_replicated_failure_raises(self, small_model):
        ds = build(small_model, k=1)
        with pytest.raises(ReplicaError):
            self.run_with_kill(ds, at_ms=2.0)

    def test_mid_kill_with_cache(self, small_model):
        """Failover composes with a shared pool: frames of the dead disk
        are dropped and the run still completes every query."""
        ds = build(small_model).with_cache(4096, prefetch="track")
        report = self.run_with_kill(ds, at_ms=10.0, queries=8)
        assert len(report.traces) == 16
        assert not any(
            disk == 1 for disk in ds.cache._resident
            if ds.cache._resident[disk]
        )

    def test_failover_onto_finished_disk_still_completes(self):
        """Regression: failing a sub over onto a disk that already
        completed its portion of the same query must re-open that
        disk's pending slot — a stale zero-count in disk_remaining
        silently dropped the query (and every later closed-loop one)."""
        from repro.api import Dataset

        ds = Dataset.create(
            (32, 16, 16), layout="naive", drive="minidrive", seed=1,
        ).with_shards(2).with_replication(2)
        report = (
            ds.traffic()
            .closed(1, think_ms=0.0, queries=3)
            .kill(51.5, 1)
            .run()
        )
        assert len(report.traces) == 3
        assert report.meta["failures"]["redispatched_subs"] >= 1

    def test_out_of_range_disk_raises(self, small_model):
        """A typo'd disk index must not silently measure the healthy
        path while the meta claims a failure was injected."""
        ds = build(small_model)
        with pytest.raises(QueryError, match="no client volume"):
            (
                ds.traffic()
                .clients(2, mix=QueryMix.beams(1, 2), queries=4)
                .kill(2.0, 7)
                .run()
            )

    def test_abandoned_sub_not_admitted_after_revive(self, small_model):
        """A sub-plan abandoned by failover was never fully serviced:
        its blocks must not enter the cache at completion, even when
        the dead disk is revived before the query finishes."""
        from repro.traffic.clients import RangeDraw

        ds = build(small_model).with_cache(16384)
        report = (
            ds.traffic()
            # one full-dataset range: one sub-plan per chunk, so the
            # killed disk's sub is in flight (or queued) at the kill
            .clients(1, mix=QueryMix([RangeDraw(100.0)]), queries=1)
            .slice_runs(4)
            .kill(1.0, 1, revive_at_ms=2.0)
            .run()
        )
        assert len(report.traces) == 1
        assert report.meta["failures"]["redispatched_subs"] >= 1
        # disk 1 was revived before completion, yet none of its blocks
        # may be resident — they were dropped at the kill and never
        # re-read from that disk
        assert len(ds.cache._resident.get(1, ())) == 0
        assert ds.cache.occupancy > 0  # the live disks' blocks landed

    def test_engine_level_failures_param(self, small_model):
        """TrafficSim accepts the schedule directly (no façade)."""
        ds = build(small_model, seed=31)
        clients = [
            TrafficClient(
                name="c0", storage=ds.storage, mapper=ds.mapper,
                mix=QueryMix.beams(1, 2), n_queries=5, rng=ds.rng(),
            )
        ]
        sim = TrafficSim(
            clients, TrafficConfig(slice_runs=8),
            failures=[(4.0, "kill", 2)],
        )
        report = sim.run()
        assert len(report.traces) == 5
        assert report.meta["failures"]["schedule"][0]["disk"] == 2
