"""Parity: ``with_replication(1)`` is bit-identical to the sharded stack.

The acceptance bar of the replica subsystem: a single-copy replicated
dataset runs the full replica machinery (replica map, copy selection,
ReplicatedPrepared, the failover-capable traffic path) yet must produce
bit-identical results and JSON to the PR 4 sharded stack across the
executor, batch ``Report`` JSON, and traffic JSON — with and without an
active cache.  Every comparison is ``==`` on full JSON or dataclass
fields, no tolerances — the same bar the 1-shard and capacity-0 cache
parities hold.
"""

import numpy as np
import pytest

from repro.api import Dataset
from repro.query.workload import random_beam, random_range_cube
from repro.traffic import QueryMix

LAYOUTS = ["multimap", "naive", "zorder", "hilbert"]
SHAPE = (24, 12, 12)


@pytest.mark.parametrize("layout", LAYOUTS)
class TestBatchParity:
    def test_report_json_identical(self, small_model, layout):
        sharded = Dataset.create(SHAPE, layout=layout, drive=small_model,
                                 seed=11).with_shards(2)
        r_sharded = sharded.query().random_beams(axis=1, n=5) \
                           .range_selectivity(5.0).run()
        replicated = Dataset.create(SHAPE, layout=layout,
                                    drive=small_model, seed=11) \
            .with_shards(2).with_replication(1)
        r_replicated = replicated.query().random_beams(axis=1, n=5) \
                                 .range_selectivity(5.0).run()
        assert r_sharded.to_json() == r_replicated.to_json()

    def test_executor_results_identical(self, small_model, layout):
        """Query-by-query QueryResult equality through the managers."""
        ds1 = Dataset.create(SHAPE, layout=layout,
                             drive=small_model).with_shards(3)
        ds2 = Dataset.create(SHAPE, layout=layout,
                             drive=small_model).with_shards(3) \
            .with_replication(1)
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        for _ in range(3):
            q1 = random_beam(SHAPE, 1, rng1)
            q2 = random_beam(SHAPE, 1, rng2)
            assert ds1.storage.run_query(ds1.mapper, q1, rng=rng1) \
                == ds2.storage.run_query(ds2.mapper, q2, rng=rng2)
        for _ in range(2):
            q1 = random_range_cube(SHAPE, 8.0, rng1)
            q2 = random_range_cube(SHAPE, 8.0, rng2)
            assert ds1.storage.run_query(ds1.mapper, q1, rng=rng1) \
                == ds2.storage.run_query(ds2.mapper, q2, rng=rng2)


class TestReadPolicyParity:
    @pytest.mark.parametrize(
        "read_policy", ["primary", "round_robin", "least_loaded"]
    )
    def test_any_policy_with_one_copy_identical(self, small_model,
                                                read_policy):
        """One copy per chunk: every read policy must pick it."""
        sharded = Dataset.create(SHAPE, layout="multimap",
                                 drive=small_model, seed=3).with_shards(2)
        replicated = Dataset.create(
            SHAPE, layout="multimap", drive=small_model, seed=3,
        ).with_shards(2).with_replication(1, read_policy=read_policy)
        batch = sharded.query().random_beams(axis=2, n=4)
        assert batch.run().to_json() == \
            replicated.random_beams(axis=2, n=4).run().to_json()

    def test_locality_aligned_placement_also_identical(self, small_model):
        sharded = Dataset.create(SHAPE, layout="multimap",
                                 drive=small_model, seed=3).with_shards(2)
        replicated = Dataset.create(
            SHAPE, layout="multimap", drive=small_model, seed=3,
        ).with_shards(2).with_replication(
            1, placement="locality_aligned",
        )
        batch = sharded.query().random_beams(axis=2, n=4)
        assert batch.run().to_json() == \
            replicated.random_beams(axis=2, n=4).run().to_json()


class TestTrafficParity:
    @pytest.mark.parametrize("layout", ["multimap", "zorder"])
    def test_seeded_traffic_json_identical(self, small_model, layout):
        def run(ds):
            return (
                ds.traffic()
                .clients(3, mix=QueryMix.beams(1, 2), queries=6)
                .slice_runs(8)
                .run()
            )

        sharded = Dataset.create(SHAPE, layout=layout, drive=small_model,
                                 seed=9).with_shards(2)
        replicated = Dataset.create(SHAPE, layout=layout,
                                    drive=small_model, seed=9) \
            .with_shards(2).with_replication(1)
        assert run(sharded).to_json() == run(replicated).to_json()

    def test_unsharded_vs_one_shard_one_copy(self, small_model):
        """The whole chain: plain == with_shards(1).with_replication(1)."""
        def run(ds):
            return (
                ds.traffic()
                .clients(1, mix=QueryMix.beams(1), queries=6)
                .slice_runs(None)
                .run()
            )

        plain = Dataset.create(SHAPE, layout="multimap",
                               drive=small_model, seed=13)
        replicated = Dataset.create(SHAPE, layout="multimap",
                                    drive=small_model, seed=13) \
            .with_shards(1).with_replication(1)
        assert run(plain).to_json() == run(replicated).to_json()


class TestCachedParity:
    def test_cached_one_copy_identical(self, small_model):
        """An active pool composes with k=1 parity bit-for-bit."""
        def build(replicate):
            ds = Dataset.create(SHAPE, layout="multimap",
                                drive=small_model, seed=21).with_shards(2)
            if replicate:
                ds.with_replication(1)
            return ds.with_cache(2048, policy="slru", prefetch="track")

        r_shard = build(False).query().random_beams(axis=1, n=6) \
                              .repeats(2).run()
        r_repl = build(True).query().random_beams(axis=1, n=6) \
                            .repeats(2).run()
        assert r_shard.to_json() == r_repl.to_json()

    def test_cached_per_shard_scope_identical(self, small_model):
        def build(replicate):
            ds = Dataset.create(SHAPE, layout="multimap",
                                drive=small_model, seed=23).with_shards(2)
            if replicate:
                ds.with_replication(1)
            return ds.with_cache(1024, scope="per_shard")

        r_shard = build(False).random_beams(axis=2, n=5).run()
        r_repl = build(True).random_beams(axis=2, n=5).run()
        assert r_shard.to_json() == r_repl.to_json()

    def test_cached_traffic_one_copy_identical(self, small_model):
        def run(replicate):
            ds = Dataset.create(SHAPE, layout="multimap",
                                drive=small_model, seed=27).with_shards(2)
            if replicate:
                ds.with_replication(1)
            ds.with_cache(2048, prefetch="track")
            return (
                ds.traffic()
                .clients(2, mix=QueryMix.beams(1, 2), queries=5)
                .slice_runs(8)
                .run()
            )

        assert run(False).to_json() == run(True).to_json()


class TestMetaGating:
    def test_one_copy_meta_has_no_replica_keys(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=1).with_shards(2).with_replication(1)
        report = ds.random_beams(axis=1, n=2).run()
        assert "replicas" not in report.meta
        assert "replicas" not in ds.describe()
        assert ds.replication_k == 1 and ds.is_replicated
        assert ds.replica_map is not None

    def test_multi_copy_meta_present(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=1).with_shards(3).with_replication(
            2, placement="locality_aligned", read_policy="round_robin",
        )
        report = ds.random_beams(axis=2, n=2).run()
        assert report.meta["replicas"]["k"] == 2
        assert report.meta["replicas"]["read_policy"] == "round_robin"
        assert ds.describe()["replicas"]["placement"] == \
            "locality_aligned"
        assert ds.replication_k == 2

    def test_unreplicated_dataset_properties(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model)
        assert ds.replication_k == 1
        assert not ds.is_replicated
        assert ds.replica_map is None
