"""ReplicatedStorageManager: read policies, failover, degraded stats."""

import numpy as np
import pytest

from repro.api import Dataset
from repro.errors import DatasetError, RegistryError, ReplicaError
from repro.query.workload import BeamQuery, RangeQuery
from repro.replica import ReplicatedPrepared, read_policy_names

SHAPE = (24, 12, 12)


def build(small_model, *, n=3, k=2, layout="multimap", seed=7, **opts):
    return Dataset.create(
        SHAPE, layout=layout, drive=small_model, seed=seed,
    ).with_shards(n).with_replication(k, **opts)


class TestFacadeWiring:
    def test_requires_sharding_first(self, small_model):
        ds = Dataset.create(SHAPE, drive=small_model)
        with pytest.raises(DatasetError, match="with_shards"):
            ds.with_replication(2)

    def test_k_bounded_by_disks(self, small_model):
        ds = Dataset.create(SHAPE, drive=small_model).with_shards(2)
        with pytest.raises(DatasetError, match="k=3"):
            ds.with_replication(3)
        with pytest.raises(DatasetError, match="k must be >= 1"):
            ds.with_replication(0)

    def test_bad_names_leave_dataset_untouched(self, small_model):
        ds = Dataset.create(SHAPE, drive=small_model,
                            seed=1).with_shards(2)
        storage = ds.storage
        with pytest.raises(RegistryError):
            ds.with_replication(2, placement="nope")
        with pytest.raises(RegistryError):
            ds.with_replication(2, read_policy="nope")
        assert ds.storage is storage
        assert not ds.is_replicated

    def test_with_layout_clone_carries_replication(self, small_model):
        ds = build(small_model, k=2, read_policy="round_robin")
        clone = ds.with_layout("zorder")
        assert clone.replication_k == 2
        assert clone._replica_spec == ds._replica_spec
        assert clone.replica_map.k == 2
        # fresh stack: the clone's storage is its own
        assert clone.storage is not ds.storage

    def test_resharding_reapplies_replication(self, small_model):
        ds = build(small_model, n=3, k=2)
        ds.with_shards(4)
        assert ds.n_shards == 4
        assert ds.replication_k == 2
        assert ds.replica_map.n_disks == 4

    def test_resharding_below_k_raises_and_leaves_intact(self,
                                                         small_model):
        ds = build(small_model, n=3, k=3)
        storage = ds.storage
        with pytest.raises(DatasetError, match="at least k member"):
            ds.with_shards(2)
        # the failed call left the dataset exactly as it was
        assert ds.storage is storage
        assert ds.n_shards == 3
        assert ds.replication_k == 3
        assert ds.is_replicated

    def test_primary_placement_matches_sharded_stack(self, small_model):
        """Copy-0 mappers occupy exactly the sharded stack's LBNs."""
        sharded = Dataset.create(SHAPE, drive=small_model).with_shards(3)
        replicated = build(small_model, n=3, k=2)
        for m_s, copies in zip(sharded.storage.mapper.chunk_mappers,
                               replicated.storage.copy_mappers):
            coords = np.asarray([[0, 0, 0], [1, 2, 3]], dtype=np.int64)
            np.testing.assert_array_equal(
                m_s.lbns(coords), copies[0].lbns(coords)
            )
            assert m_s.disk_index == copies[0].disk_index

    def test_replica_mappers_on_distinct_disks(self, small_model):
        ds = build(small_model, n=3, k=3)
        for i, copies in enumerate(ds.storage.copy_mappers):
            disks = [m.disk_index for m in copies]
            assert len(set(disks)) == 3
            assert disks == list(ds.replica_map.copies_of(i))


class TestReadPolicies:
    def test_builtins_registered(self):
        for name in ("primary", "round_robin", "least_loaded"):
            assert name in read_policy_names()

    def test_primary_routes_to_copy_zero_when_healthy(self, small_model):
        ds = build(small_model, k=2, read_policy="primary")
        ds.random_beams(axis=2, n=4).run()
        stats = ds.storage.replica_stats
        assert stats.replica_reads == 0
        assert stats.primary_reads > 0

    def test_round_robin_alternates_copies(self, small_model):
        ds = build(small_model, k=2, read_policy="round_robin")
        q = BeamQuery(2, (0, 0, 0), 0, None)
        rng = np.random.default_rng(0)
        ds.storage.run_query(ds.mapper, q, rng=rng)
        ds.storage.run_query(ds.mapper, q, rng=rng)
        stats = ds.storage.replica_stats
        assert stats.primary_reads > 0 and stats.replica_reads > 0

    def test_least_loaded_spreads_blocks(self, small_model):
        ds = build(small_model, k=2, read_policy="least_loaded")
        ds.random_beams(axis=1, n=6).run()
        stats = ds.storage.replica_stats
        blocks = [b for b in stats.planned_blocks if b]
        assert len(blocks) >= 2  # load landed on several disks

    def test_prepared_carries_sources(self, small_model):
        ds = build(small_model, k=2)
        prepared = ds.storage.prepare(
            ds.mapper, RangeQuery((0, 0, 0), (24, 12, 4))
        )
        assert isinstance(prepared, ReplicatedPrepared)
        assert len(prepared.sources) == len(prepared.subs)
        for source, sub in zip(prepared.sources, prepared.subs):
            disk = ds.replica_map.disks[source.chunk, source.copy]
            assert sub.disk_index == int(disk)


class TestFailover:
    def test_failed_primary_diverts_reads(self, small_model):
        ds = build(small_model, n=3, k=2)
        victim = int(ds.replica_map.disks[0, 0])
        ds.storage.fail_disk(victim)
        report = ds.random_beams(axis=2, n=4).run()
        stats = report.meta["replicas"]["stats"]
        assert report.meta["replicas"]["failed"] == [victim]
        assert stats["replica_reads"] > 0
        assert stats["degraded_queries"] > 0
        # no sub-plan may touch the dead disk
        prepared = ds.storage.prepare(
            ds.mapper, RangeQuery((0, 0, 0), SHAPE)
        )
        assert all(s.disk_index != victim for s in prepared.subs)

    def test_revive_restores_primary_routing(self, small_model):
        ds = build(small_model, n=3, k=2)
        ds.storage.fail_disk(1)
        ds.storage.revive_disk(1)
        ds.random_beams(axis=2, n=3).run()
        assert ds.storage.replica_stats.replica_reads == 0

    def test_all_copies_dead_raises(self, small_model):
        ds = build(small_model, n=3, k=2)
        disks = ds.replica_map.copies_of(0)
        for d in disks:
            ds.storage.fail_disk(d)
        with pytest.raises(ReplicaError, match="unreadable"):
            ds.storage.prepare(ds.mapper, RangeQuery((0, 0, 0), SHAPE))

    def test_k1_failure_loses_chunks(self, small_model):
        ds = build(small_model, n=3, k=1)
        ds.storage.fail_disk(0)
        with pytest.raises(ReplicaError, match="all 1 copies"):
            ds.storage.prepare(ds.mapper, RangeQuery((0, 0, 0), SHAPE))

    def test_fail_disk_validates_range(self, small_model):
        ds = build(small_model, n=3, k=2)
        with pytest.raises(ReplicaError, match="out of range"):
            ds.storage.fail_disk(9)

    def test_failover_sub_restarts_on_live_copy(self, small_model):
        ds = build(small_model, n=3, k=2)
        prepared = ds.storage.prepare(
            ds.mapper, RangeQuery((0, 0, 0), SHAPE)
        )
        source = prepared.sources[0]
        dead = int(ds.replica_map.disks[source.chunk, source.copy])
        ds.storage.fail_disk(dead)
        moved, sub = ds.storage.failover_sub(source)
        assert moved.chunk == source.chunk
        assert moved.copy != source.copy
        assert sub.disk_index != dead
        assert sub.n_cells == source.n_cells
        assert ds.storage.replica_stats.failovers == 1

    def test_degraded_results_still_cover_all_cells(self, small_model):
        """Same query, healthy vs degraded: identical cells and blocks,
        only the timing (and serving disks) differ."""
        healthy = build(small_model, n=3, k=2, seed=5)
        degraded = build(small_model, n=3, k=2, seed=5)
        degraded.storage.fail_disk(0)
        q = RangeQuery((0, 0, 0), (24, 12, 6))
        r_h = healthy.storage.run_query(
            healthy.mapper, q, rng=np.random.default_rng(1)
        )
        r_d = degraded.storage.run_query(
            degraded.mapper, q, rng=np.random.default_rng(1)
        )
        assert r_h.n_cells == r_d.n_cells
        assert r_h.n_blocks == r_d.n_blocks


def _resident_on(pool, disk: int) -> int:
    """Frames a shared pool currently holds for one member disk."""
    return len(pool._resident.get(disk, ()))


class TestCacheIntegration:
    def test_fail_disk_drops_cached_frames(self, small_model):
        ds = build(small_model, n=3, k=2).with_cache(8192)
        ds.random_beams(axis=2, n=4).run()
        pool = ds.cache
        assert pool.occupancy > 0
        dead = max(range(3), key=lambda d: _resident_on(pool, d))
        n_dead = _resident_on(pool, dead)
        assert n_dead > 0
        before = pool.occupancy
        ds.storage.fail_disk(dead)
        assert _resident_on(pool, dead) == 0
        assert pool.occupancy == before - n_dead

    def test_per_shard_pool_drops_failed_member(self, small_model):
        ds = build(small_model, n=3, k=2).with_cache(
            1024, scope="per_shard"
        )
        ds.random_beams(axis=2, n=4).run()
        victim = max(
            range(3), key=lambda d: ds.cache.pools[d].occupancy
        )
        assert ds.cache.pools[victim].occupancy > 0
        ds.storage.fail_disk(victim)
        assert ds.cache.pools[victim].occupancy == 0

    def test_admit_skips_failed_disks(self, small_model):
        ds = build(small_model, n=3, k=2).with_cache(8192)
        prepared = ds.storage.prepare(
            ds.mapper, RangeQuery((0, 0, 0), SHAPE)
        )
        victim = prepared.subs[0].disk_index
        ds.storage.fail_disk(victim)
        ds.storage.admit_prepared(prepared)
        assert _resident_on(ds.cache, victim) == 0
        assert ds.cache.occupancy > 0  # live disks' blocks did land
