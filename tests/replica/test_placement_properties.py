"""Hypothesis property suites for replica-placement invariants.

The contracts the replica layer leans on:

* every placement puts a chunk's k copies on k *distinct*, in-range
  disks with copy 0 pinned to the shard map's primary;
* ``rotated`` keeps per-disk primary+replica load within one copy of
  balanced whenever the primaries are balanced — and *exactly* balanced
  (hence trivially within-1) when the chunk count divides evenly over
  the disks, mirroring the divisibility caveat of the disk-modulo
  property in the shard suite;
* any single-disk failure leaves every chunk readable for k >= 2 (the
  availability guarantee degraded mode builds on).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replica import ReplicaMap
from repro.shard import ShardMap

placements = st.sampled_from(["rotated", "locality_aligned"])


@st.composite
def maps_and_k(draw):
    """A shard map plus a legal k (chunking along the last axis)."""
    n_disks = draw(st.integers(1, 5))
    k = draw(st.integers(1, n_disks))
    n_chunks = draw(st.integers(1, 24))
    head = draw(st.integers(1, 12))
    strategy = draw(st.sampled_from(["round_robin", "disk_modulo"]))
    sm = ShardMap.build(
        (head, n_chunks), n_disks, strategy, chunk_shape=(head, 1)
    )
    return sm, k


@settings(max_examples=80, deadline=None)
@given(data=maps_and_k(), placement=placements)
def test_k_distinct_in_range_primary_pinned(data, placement):
    sm, k = data
    rm = ReplicaMap.build(sm, k, placement)
    assert rm.disks.shape == (sm.n_chunks, k)
    assert rm.disks.min() >= 0 and rm.disks.max() < sm.n_disks
    primaries = np.asarray([c.disk for c in sm.chunks])
    np.testing.assert_array_equal(rm.disks[:, 0], primaries)
    for row in rm.disks:
        assert len(set(row.tolist())) == k


@settings(max_examples=80, deadline=None)
@given(n_disks=st.integers(1, 5), mult=st.integers(1, 6),
       head=st.integers(1, 8), k=st.integers(1, 5))
def test_rotated_divisible_load_exactly_balanced(n_disks, mult, head, k):
    """n_chunks % n_disks == 0 with round-robin primaries: every disk
    carries exactly k * n_chunks / n_disks copies (within-1 holds with
    zero slack)."""
    k = min(k, n_disks)
    n_chunks = n_disks * mult
    sm = ShardMap.build(
        (head, n_chunks), n_disks, "round_robin", chunk_shape=(head, 1)
    )
    rm = ReplicaMap.build(sm, k, "rotated")
    counts = rm.copy_counts()
    assert max(counts) - min(counts) <= 1
    assert max(counts) == min(counts) == k * mult


@settings(max_examples=80, deadline=None)
@given(data=maps_and_k(), placement=placements)
def test_single_failure_leaves_every_chunk_readable(data, placement):
    sm, k = data
    if k < 2:
        return  # one copy cannot survive a failure by construction
    rm = ReplicaMap.build(sm, k, placement)
    for dead in range(sm.n_disks):
        assert rm.readable_fraction({dead}) == 1.0
        for i in range(sm.n_chunks):
            live = rm.live_copies(i, {dead})
            assert live, f"chunk {i} unreadable after disk {dead}"


@settings(max_examples=60, deadline=None)
@given(data=maps_and_k(), placement=placements)
def test_copy_counts_conserve_total(data, placement):
    sm, k = data
    rm = ReplicaMap.build(sm, k, placement)
    assert sum(rm.copy_counts()) == sm.n_chunks * k
    # copies_on_disk partitions the copy set
    total = sum(len(rm.copies_on_disk(d)) for d in range(sm.n_disks))
    assert total == sm.n_chunks * k
