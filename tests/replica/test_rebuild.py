"""The rebuild model: streaming a dead disk's chunks onto a spare."""

import pytest

from repro.api import Dataset
from repro.errors import ReplicaError
from repro.replica import plan_rebuild

SHAPE = (24, 12, 12)


def build(small_model, *, n=3, k=2, **opts):
    return Dataset.create(
        SHAPE, layout="multimap", drive=small_model, seed=7,
    ).with_shards(n).with_replication(k, **opts)


class TestPlanRebuild:
    def test_rebuild_covers_every_lost_copy(self, small_model):
        ds = build(small_model)
        dead = 1
        lost = ds.replica_map.copies_on_disk(dead)
        report = plan_rebuild(ds.storage, dead)
        assert report.n_copies == len(lost)
        assert report.n_blocks == sum(
            ds.replica_map.shard_map.chunks[c].n_cells
            for c, _ in lost
        )
        assert report.rebuild_ms > 0
        assert report.spare_write_ms > 0
        assert dead not in report.source_read_ms

    def test_ideal_is_makespan_of_sources_and_spare(self, small_model):
        report = plan_rebuild(build(small_model).storage, 0)
        expected = max(
            max(report.source_read_ms.values()), report.spare_write_ms
        )
        assert report.ideal_ms == expected
        assert report.rebuild_ms == expected  # throttle 1.0

    def test_throttle_stretches_rebuild(self, small_model):
        storage = build(small_model).storage
        full = plan_rebuild(storage, 0)
        half = plan_rebuild(storage, 0, throttle=0.5)
        assert half.rebuild_ms == pytest.approx(2 * full.rebuild_ms)
        assert half.ideal_ms == full.ideal_ms
        # throttling lowers the per-source busy fraction
        for disk in full.source_read_ms:
            assert half.interference()[disk]["busy_frac"] < \
                full.interference()[disk]["busy_frac"]

    def test_interference_dilation(self, small_model):
        report = plan_rebuild(build(small_model).storage, 2)
        for stats in report.interference().values():
            assert 0 < stats["busy_frac"] < 1
            assert stats["foreground_dilation"] == pytest.approx(
                1.0 / (1.0 - stats["busy_frac"])
            )

    def test_to_dict_is_json_friendly(self, small_model):
        import json

        payload = plan_rebuild(build(small_model).storage, 1).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["dead_disk"] == 1
        assert set(payload["interference"]) == \
            set(payload["source_read_ms"])

    def test_deterministic(self, small_model):
        a = plan_rebuild(build(small_model).storage, 1).to_dict()
        b = plan_rebuild(build(small_model).storage, 1).to_dict()
        assert a == b

    def test_requires_replicated_manager(self, small_model):
        ds = Dataset.create(SHAPE, drive=small_model).with_shards(2)
        with pytest.raises(ReplicaError, match="replicated"):
            plan_rebuild(ds.storage, 0)

    def test_k1_rebuild_impossible(self, small_model):
        ds = build(small_model, k=1)
        with pytest.raises(ReplicaError, match="cannot be rebuilt"):
            plan_rebuild(ds.storage, 0)

    def test_validates_inputs(self, small_model):
        storage = build(small_model).storage
        with pytest.raises(ReplicaError, match="out of range"):
            plan_rebuild(storage, 7)
        with pytest.raises(ReplicaError, match="throttle"):
            plan_rebuild(storage, 0, throttle=0.0)

    def test_second_failure_narrows_sources(self, small_model):
        """With another disk already failed, it cannot serve reads."""
        ds = build(small_model, n=3, k=3)
        ds.storage.fail_disk(1)
        report = plan_rebuild(ds.storage, 0)
        assert 1 not in report.source_read_ms
        assert 0 not in report.source_read_ms
