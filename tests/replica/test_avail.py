"""The availability sweep (repro.replica.avail)."""

import json

import pytest

from repro.errors import ReplicaError
from repro.replica import render_avail_sweep, run_avail_sweep

ARGS = dict(
    layouts=("naive", "multimap"),
    ks=(1, 2),
    n_disks=2,
    n_beams=3,
    drive="minidrive",
    seed=3,
)


@pytest.fixture(scope="module")
def sweep():
    return run_avail_sweep((16, 8, 8), **ARGS)


class TestRunAvailSweep:
    def test_cells_and_meta(self, sweep):
        assert set(sweep) == {"naive", "multimap", "meta"}
        for layout in ("naive", "multimap"):
            assert set(sweep[layout]) == {1, 2}
            for k, cell in sweep[layout].items():
                assert cell["k"] == k
                assert cell["storage_overhead"] == k
                assert cell["healthy_mb_per_s"] > 0
        meta = sweep["meta"]
        assert meta["n_disks"] == 2
        assert meta["ks"] == [1, 2]
        assert 0 <= meta["killed_disk"] < 2

    def test_k2_fully_available(self, sweep):
        for layout in ("naive", "multimap"):
            cell = sweep[layout][2]
            assert cell["availability"] == 1.0
            assert cell["skipped"] == 0
            assert cell["completed"] == 3
            assert cell["degraded_mb_per_s"] > 0

    def test_k1_loses_chunks(self, sweep):
        for layout in ("naive", "multimap"):
            cell = sweep[layout][1]
            assert cell["availability"] < 1.0

    def test_same_victim_for_every_cell(self):
        a = run_avail_sweep((16, 8, 8), **ARGS)
        b = run_avail_sweep((16, 8, 8), **ARGS)
        assert a["meta"]["killed_disk"] == b["meta"]["killed_disk"]
        assert json.dumps(a, default=str) == json.dumps(b, default=str)

    def test_explicit_kill_disk(self):
        data = run_avail_sweep(
            (16, 8, 8), layouts=("naive",), ks=(2,), n_disks=2,
            n_beams=2, drive="minidrive", seed=3, kill_disk=1,
        )
        assert data["meta"]["killed_disk"] == 1

    def test_k_must_fit_disks(self):
        with pytest.raises(ReplicaError, match="n_disks"):
            run_avail_sweep((16, 8, 8), ks=(4,), n_disks=2,
                            drive="minidrive")


class TestRender:
    def test_tables_render(self, sweep):
        text = render_avail_sweep(sweep)
        assert "healthy throughput" in text
        assert "degraded throughput" in text
        assert "availability" in text
        assert "multimap" in text and "k=2" in text
