"""ReplicaMap construction, placements, and invariant enforcement."""

import numpy as np
import pytest

from repro.errors import RegistryError, ReplicaError
from repro.replica import (
    PLACEMENTS,
    ReplicaMap,
    placement_names,
    register_placement,
)
from repro.shard import ShardMap


def rmap(dims=(12, 6, 6), n_disks=3, k=2, placement="rotated",
         **build_opts):
    return ReplicaMap.build(
        ShardMap.build(dims, n_disks, **build_opts), k, placement
    )


class TestBuild:
    def test_rotated_offsets_primary(self):
        rm = rmap(n_disks=3, k=3)
        for i in range(rm.n_chunks):
            primary = rm.shard_map.chunks[i].disk
            assert rm.copies_of(i) == tuple(
                (primary + r) % 3 for r in range(3)
            )

    def test_copy_zero_is_primary_everywhere(self):
        for placement in ("rotated", "locality_aligned"):
            rm = rmap(k=2, placement=placement)
            primaries = [c.disk for c in rm.shard_map.chunks]
            np.testing.assert_array_equal(rm.disks[:, 0], primaries)

    def test_locality_aligned_groups_adjacent_chunks(self):
        """Replica-1 copies of enumeration-adjacent chunks co-locate
        (modulo primary-collision probing)."""
        rm = rmap(dims=(8, 4, 12), n_disks=4, k=2,
                  placement="locality_aligned", chunk_shape=(8, 4, 1))
        homes = rm.disks[:, 1]
        # 12 chunks over 4 disks: blocks of 3 consecutive chunks share a
        # base home; distinct replica homes stay <= distinct blocks + 1
        n_blocks = len({(i * 4) // 12 for i in range(12)})
        for b in range(n_blocks):
            block = homes[3 * b: 3 * b + 3]
            assert len(set(block.tolist())) <= 2

    def test_k_must_fit_disk_count(self):
        with pytest.raises(ReplicaError, match="k=4"):
            rmap(n_disks=3, k=4)
        with pytest.raises(ReplicaError):
            rmap(k=0)

    def test_unknown_placement(self):
        with pytest.raises(RegistryError, match="unknown placement"):
            rmap(placement="nope")

    def test_k1_single_column(self):
        rm = rmap(k=1)
        assert rm.disks.shape == (rm.n_chunks, 1)
        assert rm.copy_counts() == rm.shard_map.chunk_counts()


class TestInvariants:
    def test_rejects_moved_primary(self):
        sm = ShardMap.build((12, 6, 6), 3)
        disks = np.stack(
            [(np.asarray([c.disk for c in sm.chunks]) + 1) % 3,
             np.asarray([c.disk for c in sm.chunks])], axis=1,
        )
        with pytest.raises(ReplicaError, match="primary"):
            ReplicaMap(sm, 2, "custom", disks)

    def test_rejects_duplicate_disks(self):
        sm = ShardMap.build((12, 6, 6), 3)
        primaries = np.asarray([c.disk for c in sm.chunks])
        disks = np.stack([primaries, primaries], axis=1)
        with pytest.raises(ReplicaError, match="non-distinct"):
            ReplicaMap(sm, 2, "custom", disks)

    def test_rejects_out_of_range(self):
        sm = ShardMap.build((12, 6, 6), 3)
        primaries = np.asarray([c.disk for c in sm.chunks])
        disks = np.stack([primaries, primaries + 3], axis=1)
        with pytest.raises(ReplicaError, match="out of range"):
            ReplicaMap(sm, 2, "custom", disks)

    def test_rejects_shape_mismatch(self):
        sm = ShardMap.build((12, 6, 6), 3)
        with pytest.raises(ReplicaError, match="shape"):
            ReplicaMap(sm, 2, "custom", np.zeros((1, 2), dtype=np.int64))


class TestLookups:
    def test_copies_on_disk_partitions_everything(self):
        rm = rmap(n_disks=3, k=2)
        seen = set()
        for d in range(3):
            for chunk, copy in rm.copies_on_disk(d):
                assert rm.disks[chunk, copy] == d
                seen.add((chunk, copy))
        assert len(seen) == rm.n_chunks * 2
        assert sum(rm.copy_counts()) == rm.n_chunks * 2

    def test_live_copies_and_readable_fraction(self):
        rm = rmap(n_disks=3, k=2)
        assert rm.readable_fraction() == 1.0
        for d in range(3):
            assert rm.readable_fraction({d}) == 1.0
            for i in range(rm.n_chunks):
                live = rm.live_copies(i, {d})
                assert live
                assert all(rm.disks[i, r] != d for r in live)
        # k=1: killing a disk loses its chunks
        rm1 = rmap(n_disks=3, k=1)
        counts = rm1.shard_map.chunk_counts()
        for d in range(3):
            expected = 1.0 - counts[d] / rm1.n_chunks
            assert rm1.readable_fraction({d}) == pytest.approx(expected)

    def test_describe(self):
        rm = rmap(n_disks=3, k=2, placement="locality_aligned")
        d = rm.describe()
        assert d["k"] == 2
        assert d["placement"] == "locality_aligned"
        assert d["copy_counts"] == rm.copy_counts()
        assert sum(d["primary_counts"]) == rm.n_chunks


class TestRegistry:
    def test_builtins_registered(self):
        assert "rotated" in placement_names()
        assert "locality_aligned" in placement_names()
        assert PLACEMENTS.get("rotated").description

    def test_third_party_placement(self):
        @register_placement("test_reverse_rotated")
        def _reverse(shard_map, k):
            """Copy r on disk (primary - r) mod n."""
            n = shard_map.n_disks
            primaries = np.asarray(
                [c.disk for c in shard_map.chunks], dtype=np.int64
            )
            offs = np.arange(int(k), dtype=np.int64)
            return (primaries[:, np.newaxis] - offs[np.newaxis, :]) % n

        rm = rmap(k=2, placement="test_reverse_rotated")
        assert rm.placement == "test_reverse_rotated"
        for i in range(rm.n_chunks):
            p = rm.shard_map.chunks[i].disk
            assert rm.copies_of(i) == (p, (p - 1) % 3)
