"""The exception hierarchy: everything catchable as ReproError."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.GeometryError,
            errors.AdjacencyError,
            errors.MappingError,
            errors.AllocationError,
            errors.QueryError,
            errors.DatasetError,
        ],
    )
    def test_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_library_raises_catchable_errors(self, small_model):
        """A few real failure paths, all caught by the base class."""
        from repro.core import MultiMapMapper, plan_basic_cube
        from repro.lvm import LogicalVolume

        with pytest.raises(errors.ReproError):
            plan_basic_cube((), 100, 100, 8)
        vol = LogicalVolume([small_model])
        with pytest.raises(errors.ReproError):
            MultiMapMapper((10**6, 10**3), vol)
        with pytest.raises(errors.ReproError):
            vol.allocate_blocks(0, -5)
        with pytest.raises(errors.ReproError):
            small_model.geometry.check_lbn(-1)
