"""Tests for §4.5 non-grid mapping: uniform regions over an octree."""

import numpy as np
import pytest

from repro.core import RegionMapping, merge_uniform_octants
from repro.index import Octree
from repro.lvm import LogicalVolume


def layered_tree(depth=4):
    side = 1 << depth

    def level_fn(x, y, z, box_side):
        return depth if z < side // 2 else depth - 2

    return Octree(depth, level_fn)


class TestMergeUniformOctants:
    def test_layered_tree_merges_into_slabs(self):
        tree = layered_tree(4)
        regions = merge_uniform_octants(tree, min_leaves=1)
        # two slabs: fine lower half, coarse upper half
        assert len(regions) == 2
        assert sorted(r.leaf_level for r in regions) == [2, 4]

    def test_regions_cover_leaf_counts(self):
        tree = layered_tree(4)
        regions = merge_uniform_octants(tree, min_leaves=1)
        assert sum(r.n_leaves for r in regions) == tree.n_leaves

    def test_min_leaves_filter(self):
        tree = layered_tree(4)
        regions = merge_uniform_octants(tree, min_leaves=10**9)
        assert regions == []

    def test_grid_matches_shape(self):
        tree = layered_tree(4)
        for r in merge_uniform_octants(tree, min_leaves=1):
            for d in range(3):
                assert r.grid[d] * r.leaf_side == r.shape[d]

    def test_regions_sorted_by_size(self):
        tree = layered_tree(4)
        regions = merge_uniform_octants(tree, min_leaves=1)
        sizes = [r.n_leaves for r in regions]
        assert sizes == sorted(sizes, reverse=True)

    def test_local_coords(self):
        tree = layered_tree(4)
        region = merge_uniform_octants(tree, min_leaves=1)[0]
        origins = np.array([list(region.origin)])
        np.testing.assert_array_equal(
            region.leaf_local_coords(origins), [[0, 0, 0]]
        )


class TestRegionMapping:
    @pytest.fixture()
    def mapping(self, small_model):
        tree = layered_tree(4)
        regions = merge_uniform_octants(tree, min_leaves=1)
        vol = LogicalVolume([small_model], depth=16)
        return RegionMapping(tree, regions, vol, 0), tree

    def test_full_coverage_no_fallback(self, mapping):
        rm, tree = mapping
        assert rm.coverage == 1.0
        assert rm.n_fallback == 0

    def test_leaf_lbns_unique(self, mapping):
        rm, tree = mapping
        lbns = rm.leaf_lbns(np.arange(tree.n_leaves))
        assert np.unique(lbns).size == tree.n_leaves

    def test_one_mapper_per_region(self, mapping):
        rm, tree = mapping
        assert len(rm.mappers) == len(rm.regions)

    def test_fallback_used_for_unmapped_leaves(self, small_model):
        tree = layered_tree(4)
        regions = merge_uniform_octants(tree, min_leaves=1)[:1]
        vol = LogicalVolume([small_model], depth=16)
        rm = RegionMapping(tree, regions, vol, 0)
        assert 0 < rm.coverage < 1.0
        assert rm.n_fallback > 0
        lbns = rm.leaf_lbns(np.arange(tree.n_leaves))
        assert np.unique(lbns).size == tree.n_leaves

    def test_region_leaves_follow_multimap_layout(self, mapping):
        """Within a uniform region, leaves along the region's first axis
        map to consecutive LBNs (the Dim0-on-track property)."""
        rm, tree = mapping
        region = rm.regions[0]
        mapper = rm.mappers[0]
        k0 = min(mapper.K[0], region.grid[0])
        coords = np.zeros((k0, 3), dtype=np.int64)
        coords[:, 0] = np.arange(k0)
        lbns = mapper.lbns(coords)
        assert (np.diff(lbns) == 1).all()
