"""Tests for the ASCII layout renderer (the paper's Figures 2-4)."""

import pytest

from repro.core import (
    MultiMapMapper,
    render_figure2,
    render_figure3,
    render_figure4,
    render_mapping,
)
from repro.errors import MappingError
from repro.lvm import LogicalVolume


class TestPaperFigureRenderings:
    def test_figure2_exact_text(self):
        expected = (
            " 10  11  12  13  14\n"
            "  5   6   7   8   9\n"
            "  0   1   2   3   4"
        )
        assert render_figure2() == expected

    def test_figure3_layers(self):
        out = render_figure3()
        # three layers, labelled by the outer coordinate
        assert "[x2=0]" in out and "[x2=1]" in out and "[x2=2]" in out
        # layer 1 starts at LBN 15 (the 3rd adjacent block of 0)
        assert " 15  16  17  18  19" in out
        # layer 2 starts at LBN 30
        assert " 30  31  32  33  34" in out

    def test_figure4_outer_block(self):
        out = render_figure4()
        assert "[x2=0, x3=1]" in out
        # second 3-D cube starts at LBN 45 (the 9th adjacent block of 0)
        assert " 45  46  47  48  49" in out

    def test_figure4_all_90_cells_present(self):
        out = render_figure4()
        numbers = {
            int(tok) for tok in out.replace("\n", " ").split()
            if tok.isdigit()
        }
        missing = set(range(90)) - numbers
        assert not missing


class TestRenderMapping:
    def test_1d(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        mm = MultiMapMapper((6,), vol)
        out = render_mapping(mm)
        assert len(out.split()) == 6

    def test_cap_enforced(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        mm = MultiMapMapper((40, 12, 10), vol)
        with pytest.raises(MappingError):
            render_mapping(mm, max_cells=100)
