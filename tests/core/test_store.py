"""Tests for §4.6 variable-size dataset support (CellStore)."""

import numpy as np
import pytest

from repro.core import CellStore, MultiMapMapper
from repro.errors import DatasetError, MappingError
from repro.lvm import LogicalVolume
from repro.mappings import NaiveMapper


@pytest.fixture()
def store_setup(small_model):
    vol = LogicalVolume([small_model], depth=16)
    mapper = MultiMapMapper((20, 6, 5), vol)
    store = CellStore(
        vol and mapper, vol, points_per_cell=8, fill_factor=0.75,
        reclaim_threshold=0.25,
    )
    return vol, mapper, store


class TestConstruction:
    def test_rejects_bad_fill_factor(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        m = NaiveMapper((10, 10), vol.allocate_blocks(0, 100))
        with pytest.raises(DatasetError):
            CellStore(m, vol, fill_factor=0.0)
        with pytest.raises(DatasetError):
            CellStore(m, vol, fill_factor=1.5)

    def test_rejects_bad_threshold(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        m = NaiveMapper((10, 10), vol.allocate_blocks(0, 100))
        with pytest.raises(DatasetError):
            CellStore(m, vol, reclaim_threshold=1.0)

    def test_rejects_bad_capacity(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        m = NaiveMapper((10, 10), vol.allocate_blocks(0, 100))
        with pytest.raises(DatasetError):
            CellStore(m, vol, points_per_cell=0)


class TestBulkLoad:
    def test_load_within_budget_no_overflow(self, store_setup):
        vol, mapper, store = store_setup
        coords = np.array([[0, 0, 0], [1, 0, 0]])
        spilled = store.bulk_load(coords, counts=np.array([6, 6]))
        assert spilled == 0  # budget = 8 * 0.75 = 6

    def test_load_beyond_budget_spills(self, store_setup):
        vol, mapper, store = store_setup
        spilled = store.bulk_load(
            np.array([[0, 0, 0]]), counts=np.array([10])
        )
        assert spilled == 4
        assert store.stats().overflow_points == 4

    def test_repeated_coords_accumulate(self, store_setup):
        vol, mapper, store = store_setup
        coords = np.array([[2, 1, 1]] * 4)
        store.bulk_load(coords)
        stats = store.stats()
        assert stats.n_points == 4


class TestInserts:
    def test_insert_into_free_cell(self, store_setup):
        vol, mapper, store = store_setup
        assert store.insert((0, 0, 0), 5) == "cell"

    def test_insert_overflow_when_full(self, store_setup):
        vol, mapper, store = store_setup
        store.insert((0, 0, 0), 8)
        assert store.insert((0, 0, 0), 1) == "overflow"
        assert store.stats().overflow_pages == 1

    def test_overflow_pages_chain(self, store_setup):
        vol, mapper, store = store_setup
        store.insert((0, 0, 0), 8 + 20)
        assert store.stats().overflow_pages == 3  # ceil(20/8)

    def test_delete_drains_overflow_first(self, store_setup):
        vol, mapper, store = store_setup
        store.insert((0, 0, 0), 12)
        store.delete((0, 0, 0), 4)
        stats = store.stats()
        assert stats.overflow_points == 0
        assert stats.n_points == 8

    def test_delete_into_cell(self, store_setup):
        vol, mapper, store = store_setup
        store.insert((0, 0, 0), 6)
        store.delete((0, 0, 0), 4)
        assert store.stats().n_points == 2

    def test_overflow_extent_exhaustion(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        m = NaiveMapper((4, 4), vol.allocate_blocks(0, 16))
        store = CellStore(m, vol, points_per_cell=2, max_overflow_pages=1)
        store.insert((0, 0), 2)
        store.insert((0, 0), 2)  # fills the only overflow page
        with pytest.raises(MappingError):
            store.insert((0, 0), 4)


class TestReadPlans:
    def test_plain_cells(self, store_setup):
        vol, mapper, store = store_setup
        coords = np.array([[0, 0, 0], [5, 2, 3]])
        plan = store.read_plan(coords)
        assert plan.n_blocks == 2

    def test_overflow_pages_included(self, store_setup):
        vol, mapper, store = store_setup
        store.insert((0, 0, 0), 20)
        plan = store.read_plan(np.array([[0, 0, 0]]))
        assert plan.n_blocks == 1 + 2  # cell + ceil(12/8) overflow pages


class TestReclamation:
    def test_underflow_detection(self, store_setup):
        vol, mapper, store = store_setup
        store.insert((0, 0, 0), 1)  # 1/8 < 0.25
        assert store.needs_reorganization
        assert len(store.underflow_cells) == 1

    def test_healthy_cells_not_flagged(self, store_setup):
        vol, mapper, store = store_setup
        store.insert((0, 0, 0), 4)
        assert not store.needs_reorganization

    def test_reorganize_folds_overflow_back(self, store_setup):
        vol, mapper, store = store_setup
        store.insert((0, 0, 0), 12)
        store.delete((0, 0, 0), 0)
        # drain the cell so overflow can fold back
        store._occupancy[store._flat((0, 0, 0))[0]] = 2
        freed = store.reorganize()
        assert freed >= 1
        assert store.stats().overflow_points == 0

    def test_stats_fields(self, store_setup):
        vol, mapper, store = store_setup
        store.insert((0, 0, 0), 4)
        s = store.stats()
        assert s.n_cells == 20 * 6 * 5
        assert s.capacity_per_cell == 8
        assert s.fill_factor == 0.75
        assert 0 < s.mean_fill <= 1
