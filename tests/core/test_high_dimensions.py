"""High-dimensional datasets — the paper's §4.3 claim.

"For modern disks, D is typically on the order of hundreds, allowing
mapping for more than 10 dimensions.  For most physical simulations and
OLAP applications, this number is sufficient."  With D = 128 the bound is
N_max = 2 + log2(128) = 9; these tests push the general Figure 5
algorithm all the way there.
"""

import numpy as np
import pytest

from repro.core import MultiMapMapper, map_cell, max_dimensions
from repro.disk import atlas_10k3
from repro.errors import MappingError
from repro.lvm import LogicalVolume
from repro.mappings.base import enumerate_box


@pytest.fixture(scope="module")
def volume():
    return LogicalVolume([atlas_10k3()], depth=128)


def make_mapper(volume, n_dims, inner=2):
    """An N-D dataset with small inner sides (K_i = 2 boundary regime)."""
    dims = (32,) + (inner,) * (n_dims - 2) + (4,)
    return MultiMapMapper(dims, volume, strategy="volume"), dims


class TestNineDimensions:
    def test_nmax_for_d128(self):
        assert max_dimensions(128) == 9

    @pytest.mark.parametrize("n_dims", [5, 7, 9])
    def test_nd_mapping_bijective(self, volume, n_dims):
        mapper, dims = make_mapper(volume, n_dims)
        coords = enumerate_box((0,) * n_dims, dims)
        lbns = mapper.lbns(coords)
        assert np.unique(lbns).size == coords.shape[0]

    def test_nine_d_inner_volume_exactly_d(self, volume):
        mapper, dims = make_mapper(volume, 9)
        # 7 inner dimensions of side 2: product = 128 = D, Equation 3 tight
        assert int(np.prod(mapper.K[1:-1])) == 128

    def test_ten_dimensions_impossible_at_d128(self, volume):
        # 8 inner dims of side >= 2 would need prod >= 256 > D
        dims = (32,) + (2,) * 8 + (4,)
        mapper = MultiMapMapper(dims, volume)
        # the planner can only satisfy Eq.3 by collapsing some K_i to 1,
        # i.e. at least one dimension loses its locality
        assert min(mapper.K[1:-1]) == 1

    def test_closed_form_equals_figure5_in_9d(self, volume):
        mapper, dims = make_mapper(volume, 9)
        adj = volume.adjacency[0]
        anchor = mapper.first_lbn_of_cube((0,) * 9)
        rng = np.random.default_rng(5)
        for _ in range(10):
            cell = tuple(int(rng.integers(0, k)) for k in mapper.K)
            assert int(mapper.lbns(np.array([cell]))[0]) == map_cell(
                adj, anchor, cell, mapper.K
            )

    def test_last_dimension_still_semi_sequential(self, volume):
        """Stepping the 9th dimension jumps prod(K1..K7) = 128 = D tracks
        — the outermost legal hop — and must still cost ~one hop."""
        mapper, dims = make_mapper(volume, 9)
        drive = volume.drives[0]
        a = int(mapper.lbns(np.array([(0,) * 9]))[0])
        b = int(mapper.lbns(np.array([(0,) * 8 + (1,)]))[0])
        geom = volume.models[0].geometry
        assert geom.track_of(b) - geom.track_of(a) == 128
        drive.reset(track=geom.track_of(a))
        drive.service(a)
        tm = drive.service(b)
        assert tm.rotation_ms < 0.1
        assert tm.seek_ms == pytest.approx(
            volume.models[0].mechanics.settle_ms
        )

    def test_beam_along_every_axis(self, volume):
        mapper, dims = make_mapper(volume, 7)
        from repro.query import StorageManager

        sm = StorageManager(volume)
        for axis in range(7):
            fixed = tuple(0 for _ in dims)
            res = sm.beam(mapper, axis, fixed)
            assert res.n_cells == dims[axis]

    def test_range_query_in_6d(self, volume):
        mapper, dims = make_mapper(volume, 6, inner=3)
        lo = (4,) + (0,) * 4 + (1,)
        hi = (20,) + (2,) * 4 + (3,)
        plan = mapper.range_plan(lo, hi)
        expected = int(np.prod([b - a for a, b in zip(lo, hi)]))
        assert plan.n_blocks == expected
