"""Tests for the basic-cube planner (§4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import plan_basic_cube, track_waste_fraction
from repro.errors import MappingError


class TestConstraintsRespected:
    def test_paper_toy_4d(self):
        p = plan_basic_cube((5, 3, 3, 2), 5, 40, 9)
        assert p.K == (5, 3, 3, 2)
        assert p.grid == (1, 1, 1, 1)

    def test_k0_never_exceeds_track(self):
        p = plan_basic_cube((1000, 10), 686, 16000, 128)
        assert p.K[0] <= 686

    def test_inner_volume_never_exceeds_d(self):
        p = plan_basic_cube((259, 259, 259, 10), 686, 16000, 128)
        assert int(np.prod(p.K[1:-1])) <= 128

    def test_tracks_per_cube_fits_zone(self):
        p = plan_basic_cube((100, 100, 100), 600, 500, 64)
        assert p.cube.tracks_per_cube <= 500

    def test_grid_covers_dataset(self):
        p = plan_basic_cube((259, 259, 259), 686, 16000, 128)
        for g, k, s in zip(p.grid, p.K, (259, 259, 259)):
            assert g * k >= s

    def test_one_dimensional(self):
        p = plan_basic_cube((5000,), 686, 16000, 128)
        assert p.K == (686,)
        assert p.cube.tracks_per_cube == 1


class TestSpaceEfficiency:
    def test_packing_fills_tracks(self):
        """With S0 << T the planner must pack multiple rows per track
        rather than waste (T - K0)/T of the disk."""
        p = plan_basic_cube((259, 259, 259), 686, 16000, 128)
        assert p.packing * p.K[0] > 686 * 0.85

    def test_total_tracks_near_ideal(self):
        p = plan_basic_cube((259, 259, 259), 686, 16000, 128)
        ideal = (259 ** 3) / 686
        assert p.total_tracks <= ideal * 1.25

    def test_waste_fraction_formula(self):
        # §4.4: (T mod K0)/T with packing
        assert track_waste_fraction(686, 259, 2) == pytest.approx(168 / 686)
        assert track_waste_fraction(600, 600, 1) == 0.0

    def test_worst_case_waste_bounded(self):
        """§4.4: 'In the worst case, it can be 50%' — the planner's K0
        split avoids that by shortening rows."""
        p = plan_basic_cube((400, 10, 10), 686, 16000, 128)
        assert p.waste_fraction < 0.5


class TestLocality:
    def test_short_later_dims_stay_whole(self):
        """A 25-value dimension must not be split into tiny cubes when the
        budget allows covering it (beam locality, cf. OLAP Q2)."""
        p = plan_basic_cube((591, 75, 25, 25), 686, 16000, 128)
        assert p.K[2] == 25
        assert p.K[3] == 25

    def test_volume_strategy_maximises_cube(self):
        compact = plan_basic_cube((259, 259, 259), 686, 16000, 128)
        volume = plan_basic_cube(
            (259, 259, 259), 686, 16000, 128, strategy="volume"
        )
        assert int(np.prod(volume.K)) >= int(np.prod(compact.K))

    def test_compact_within_tolerance_of_min_tracks(self):
        p = plan_basic_cube((259, 259, 259), 686, 16000, 128)
        # the two-pass rule: at most 10% above the minimum track count
        ideal_groups = plan_basic_cube(
            (259, 259, 259), 686, 16000, 128
        ).total_tracks
        assert p.total_tracks <= ideal_groups * 1.10 + 1


class TestValidation:
    def test_rejects_bad_dims(self):
        with pytest.raises(MappingError):
            plan_basic_cube((), 686, 16000, 128)
        with pytest.raises(MappingError):
            plan_basic_cube((0, 5), 686, 16000, 128)

    def test_rejects_bad_strategy(self):
        with pytest.raises(MappingError):
            plan_basic_cube((5, 5), 686, 16000, 128, strategy="x")

    def test_rejects_zero_depth_for_nd(self):
        with pytest.raises(MappingError):
            plan_basic_cube((5, 5, 5), 686, 16000, 0)

    @given(
        s0=st.integers(1, 400),
        s1=st.integers(1, 60),
        s2=st.integers(1, 60),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_plans_always_valid(self, s0, s1, s2):
        p = plan_basic_cube((s0, s1, s2), 300, 2000, 32)
        assert p.K[0] <= 300
        assert int(np.prod(p.K[1:-1])) <= 32
        assert p.cube.tracks_per_cube <= 2000
        assert all(g * k >= s for g, k, s in zip(p.grid, p.K, (s0, s1, s2)))
        assert p.total_cubes == int(np.prod(p.grid))
