"""Tests for §4.6 bulk appends along the last dimension."""

import numpy as np
import pytest

from repro.core import MultiMapMapper
from repro.errors import MappingError
from repro.lvm import LogicalVolume
from repro.mappings.base import enumerate_box


@pytest.fixture()
def mapper(small_model):
    vol = LogicalVolume([small_model], depth=16)
    return MultiMapMapper((40, 12, 10), vol)


class TestAppendSlabs:
    def test_grows_last_dimension(self, mapper):
        mapper.append_slabs(6)
        assert mapper.dims == (40, 12, 16)
        assert mapper.n_cells == 40 * 12 * 16

    def test_existing_lbns_stable(self, mapper):
        coords = enumerate_box((0, 0, 0), (40, 12, 10))
        before = mapper.lbns(coords)
        mapper.append_slabs(7)
        after = mapper.lbns(coords)
        np.testing.assert_array_equal(before, after)

    def test_appended_cells_addressable_and_bijective(self, mapper):
        mapper.append_slabs(9)
        coords = enumerate_box((0, 0, 0), mapper.dims)
        lbns = mapper.lbns(coords)
        assert np.unique(lbns).size == coords.shape[0]

    def test_fill_within_partial_cube_allocates_nothing(self, mapper):
        # grow to the next multiple of K_last without crossing it
        k_last = mapper.K[-1]
        slack = mapper.plan.grid[-1] * k_last - mapper.dims[-1]
        if slack == 0:
            pytest.skip("last cube already full")
        n_allocs = len(mapper._allocations)
        mapper.append_slabs(slack)
        assert len(mapper._allocations) == n_allocs

    def test_crossing_cube_boundary_allocates(self, mapper):
        k_last = mapper.K[-1]
        slack = mapper.plan.grid[-1] * k_last - mapper.dims[-1]
        n_allocs = len(mapper._allocations)
        mapper.append_slabs(slack + 1)
        assert len(mapper._allocations) > n_allocs

    def test_repeated_appends(self, mapper):
        for _ in range(4):
            mapper.append_slabs(3)
        assert mapper.dims[-1] == 22
        coords = enumerate_box((0, 0, 0), mapper.dims)
        assert np.unique(mapper.lbns(coords)).size == mapper.n_cells

    def test_queries_span_old_and_new(self, mapper):
        mapper.append_slabs(10)
        plan = mapper.range_plan((0, 0, 8), (40, 12, 14))
        assert plan.n_blocks == 40 * 12 * 6

    def test_rejects_nonpositive(self, mapper):
        with pytest.raises(MappingError):
            mapper.append_slabs(0)

    def test_exhaustion_raises_cleanly(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        mm = MultiMapMapper((60, 12, 10), vol)
        with pytest.raises(MappingError):
            mm.append_slabs(10_000_000)
