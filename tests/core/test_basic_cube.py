"""Tests for basic cubes: the paper's Equations 1-3 and 5, Figure 5."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BasicCube, map_cell, max_dimensions
from repro.disk import AdjacencyModel, toy_disk
from repro.errors import MappingError


def cube(K, T=5, tracks=40, D=9):
    return BasicCube(tuple(K), T, tracks, D)


class TestConstraints:
    def test_paper_examples_validate(self):
        cube((5, 3))           # Figure 2
        cube((5, 3, 3))        # Figure 3
        cube((5, 3, 3, 2))     # Figure 4

    def test_equation1_k0_bounded_by_track(self):
        with pytest.raises(MappingError):
            cube((6, 3))

    def test_equation3_inner_volume_bounded_by_d(self):
        # K1*K2 = 12 > D = 9
        with pytest.raises(MappingError):
            cube((5, 4, 3, 2))

    def test_equation2_last_dim_bounded_by_zone_tracks(self):
        # tracks_per_cube = 3 * 14 = 42 > 40 tracks
        with pytest.raises(MappingError):
            cube((5, 3, 14))

    def test_boundary_of_equation3(self):
        cube((5, 9, 2), tracks=100)  # inner volume exactly D
        with pytest.raises(MappingError):
            cube((5, 10, 2), tracks=100)

    def test_rejects_zero_side(self):
        with pytest.raises(MappingError):
            cube((5, 0, 3))

    def test_one_dimensional_cube(self):
        c = cube((5,))
        assert c.tracks_per_cube == 1
        assert c.inner_volume == 1


class TestDerivedQuantities:
    def test_tracks_per_cube(self):
        assert cube((5, 3, 3)).tracks_per_cube == 9

    def test_cells_per_cube(self):
        assert cube((5, 3, 3)).cells_per_cube == 45

    def test_adjacency_steps(self):
        # Figure 4: Dim1 steps 1, Dim2 steps K1=3, Dim3 steps K1*K2=9
        assert cube((5, 3, 3, 2)).adjacency_steps() == (1, 3, 9)

    def test_track_deltas(self):
        c = cube((5, 3, 3))
        deltas = c.track_deltas(
            np.array([[0, 0, 0], [0, 1, 0], [0, 0, 1], [4, 2, 2]])
        )
        assert deltas.tolist() == [0, 1, 3, 8]


class TestMapCellFigure5:
    """The iterative Figure 5 algorithm on the toy disk reproduces the
    exact LBN tables of the paper's Figures 2-4."""

    @pytest.fixture()
    def adj(self, toy_model):
        return AdjacencyModel.for_model(toy_model, depth=9)

    def test_figure2_full_table(self, adj):
        # (5 x 3): LBN = x0 + 5 * x1
        for x1 in range(3):
            for x0 in range(5):
                assert map_cell(adj, 0, (x0, x1), (5, 3)) == x0 + 5 * x1

    def test_figure3_landmarks(self, adj):
        K = (5, 3, 3)
        for cell, lbn in [
            ((0, 0, 0), 0), ((4, 0, 0), 4), ((0, 1, 0), 5),
            ((4, 1, 0), 9), ((0, 2, 0), 10), ((0, 0, 1), 15),
            ((3, 0, 1), 18), ((0, 1, 1), 20), ((0, 2, 1), 25),
            ((0, 0, 2), 30), ((4, 0, 2), 34), ((0, 1, 2), 35),
            ((0, 2, 2), 40),
        ]:
            assert map_cell(adj, 0, cell, K) == lbn

    def test_figure4_landmarks(self, adj):
        K = (5, 3, 3, 2)
        for cell, lbn in [
            ((0, 0, 0, 0), 0), ((1, 0, 0, 0), 1), ((0, 0, 1, 0), 15),
            ((0, 0, 2, 0), 30), ((0, 1, 2, 0), 35), ((0, 2, 2, 0), 40),
            ((0, 0, 0, 1), 45), ((0, 0, 1, 1), 60), ((0, 0, 2, 1), 75),
            ((0, 1, 2, 1), 80), ((0, 2, 2, 1), 85),
        ]:
            assert map_cell(adj, 0, cell, K) == lbn

    def test_rejects_cell_outside_cube(self, adj):
        with pytest.raises(MappingError):
            map_cell(adj, 0, (5, 0), (5, 3))

    def test_rejects_rank_mismatch(self, adj):
        with pytest.raises(MappingError):
            map_cell(adj, 0, (0, 0), (5, 3, 3))

    def test_nonzero_anchor(self, adj):
        assert map_cell(adj, 2, (1, 1), (3, 2)) == 8  # 2 + 1 + 5

    @given(
        x0=st.integers(0, 4),
        x1=st.integers(0, 2),
        x2=st.integers(0, 2),
    )
    @settings(max_examples=45, deadline=None)
    def test_property_bijective_within_cube(self, toy_model, x0, x1, x2):
        adj = AdjacencyModel.for_model(toy_model, depth=9)
        lbn = map_cell(adj, 0, (x0, x1, x2), (5, 3, 3))
        assert lbn == x0 + 5 * x1 + 15 * x2  # zero-skew closed form


class TestMaxDimensions:
    def test_equation5_d128(self):
        assert max_dimensions(128) == 9  # 2 + log2(128)

    def test_equation5_d256(self):
        assert max_dimensions(256) == 10

    def test_paper_claim_more_than_10_dims(self):
        """'D is typically on the order of hundreds, allowing mapping for
        more than 10 dimensions'."""
        assert max_dimensions(512) >= 10

    def test_minimum(self):
        assert max_dimensions(1) == 2

    def test_rejects_zero(self):
        with pytest.raises(MappingError):
            max_dimensions(0)
