"""Tests for the MultiMap mapper: closed form vs Figure 5, plans, timing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MultiMapMapper, map_cell
from repro.errors import MappingError, QueryError
from repro.lvm import LogicalVolume
from repro.mappings.base import enumerate_box
from repro.disk import AdjacencyModel, DiskDrive, atlas_10k3, synthetic_disk, toy_disk


@pytest.fixture()
def toy_volume():
    return LogicalVolume([toy_disk(tracks=80)], depth=9)


@pytest.fixture()
def small_volume(small_model):
    return LogicalVolume([small_model], depth=16)


class TestPaperFigures:
    def test_figure2_table(self, toy_volume):
        mm = MultiMapMapper((5, 3), toy_volume)
        coords = enumerate_box((0, 0), (5, 3))
        np.testing.assert_array_equal(mm.lbns(coords), np.arange(15))

    def test_figure3_table(self, toy_volume):
        mm = MultiMapMapper((5, 3, 3), toy_volume)
        for cell, lbn in [
            ((0, 0, 0), 0), ((4, 1, 0), 9), ((0, 2, 0), 10),
            ((0, 0, 1), 15), ((0, 1, 1), 20), ((0, 2, 2), 40),
        ]:
            assert int(mm.lbns(np.array([cell]))[0]) == lbn

    def test_figure4_table(self, toy_volume):
        mm = MultiMapMapper((5, 3, 3, 2), toy_volume)
        for cell, lbn in [
            ((0, 0, 0, 0), 0), ((0, 0, 1, 0), 15), ((0, 0, 2, 0), 30),
            ((0, 0, 0, 1), 45), ((0, 0, 1, 1), 60), ((0, 2, 2, 1), 85),
        ]:
            assert int(mm.lbns(np.array([cell]))[0]) == lbn


class TestClosedFormEqualsIterative:
    """The vectorised closed form must agree cell-for-cell with the
    Figure 5 get_adjacent chains on a skewed, overhead-bearing disk."""

    @pytest.mark.parametrize("dims", [(300, 40, 20), (150, 10, 8, 4)])
    def test_equivalence(self, dims):
        model = atlas_10k3()
        vol = LogicalVolume([model], depth=128)
        mm = MultiMapMapper(dims, vol)  # compact plan: multiple cubes
        adj = vol.adjacency[0]
        rng = np.random.default_rng(3)
        anchor = mm.first_lbn_of_cube((0,) * len(dims))
        for _ in range(25):
            cell = tuple(int(rng.integers(0, k)) for k in mm.K)
            expected = map_cell(adj, anchor, cell, mm.K)
            got = int(mm.lbns(np.array([cell]))[0])
            assert got == expected, cell

    def test_equivalence_in_second_cube(self):
        model = atlas_10k3()
        vol = LogicalVolume([model], depth=128)
        # volume strategy: K1 = 128 < 150 forces a second cube along dim1
        mm = MultiMapMapper((300, 150, 20), vol, strategy="volume")
        adj = vol.adjacency[0]
        assert mm.plan.grid[1] >= 2
        anchor = mm.first_lbn_of_cube((0, 1, 0))
        cell_local = (3, 2, 1)
        expected = map_cell(adj, anchor, cell_local, mm.K)
        global_cell = (3, mm.K[1] + 2, 1)
        assert int(mm.lbns(np.array([global_cell]))[0]) == expected


class TestMappingInvariants:
    def test_bijective_over_dataset(self, small_volume):
        mm = MultiMapMapper((40, 12, 10), small_volume)
        coords = enumerate_box((0, 0, 0), (40, 12, 10))
        lbns = mm.lbns(coords)
        assert np.unique(lbns).size == coords.shape[0]

    def test_rows_contiguous_within_cube(self, small_volume):
        mm = MultiMapMapper((40, 12, 10), small_volume)
        row = np.stack(
            [np.arange(min(mm.K[0], 40)),
             np.zeros(min(mm.K[0], 40), dtype=np.int64),
             np.zeros(min(mm.K[0], 40), dtype=np.int64)],
            axis=1,
        )
        lbns = mm.lbns(row)
        assert (np.diff(lbns) == 1).all()

    def test_dim1_neighbours_are_first_adjacent_blocks(self, small_volume):
        # volume strategy keeps the whole dataset in one basic cube, so
        # every Dim1 neighbour is a true first adjacent block
        mm = MultiMapMapper((40, 12, 10), small_volume, strategy="volume")
        adj = small_volume.adjacency[0]
        a = int(mm.lbns(np.array([[5, 3, 2]]))[0])
        b = int(mm.lbns(np.array([[5, 4, 2]]))[0])
        assert b == adj.get_adjacent(a, 1)

    def test_dim2_neighbours_are_k1_step_adjacent(self, small_volume):
        mm = MultiMapMapper((40, 12, 10), small_volume, strategy="volume")
        adj = small_volume.adjacency[0]
        a = int(mm.lbns(np.array([[5, 3, 2]]))[0])
        b = int(mm.lbns(np.array([[5, 3, 3]]))[0])
        assert b == adj.get_adjacent(a, mm.K[1])

    def test_out_of_bounds_rejected(self, small_volume):
        mm = MultiMapMapper((40, 12, 10), small_volume)
        with pytest.raises(QueryError):
            mm.lbns(np.array([[40, 0, 0]]))

    def test_too_large_dataset_rejected(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        with pytest.raises(MappingError):
            MultiMapMapper((120, 1000, 500), vol)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_track_distance_bounded_by_d(self, seed):
        """Neighbouring cells on any dimension land at most D tracks
        apart — the locality guarantee of §4.2."""
        model = synthetic_disk(
            "p", settle_cylinders=8, surfaces=2,
            zone_specs=[(300, 120)], command_overhead_ms=0.05,
        )
        vol = LogicalVolume([model])
        mm = MultiMapMapper((60, 10, 8), vol)
        geom = model.geometry
        rng = np.random.default_rng(seed)
        x = [int(rng.integers(0, s - 1)) for s in (60, 10, 8)]
        axis = int(rng.integers(0, 3))
        y = list(x)
        y[axis] += 1
        # only within a basic cube is the bound guaranteed
        if any(
            (a // k) != (b // k)
            for a, b, k in zip(x, y, mm.K)
        ):
            return
        la, lb = mm.lbns(np.array([x, y]))
        d_tracks = abs(geom.track_of(int(lb)) - geom.track_of(int(la)))
        assert d_tracks <= vol.depth(0)


class TestQueryPlans:
    def test_beam0_is_sequential_runs(self, small_volume):
        mm = MultiMapMapper((40, 12, 10), small_volume)
        plan = mm.beam_plan(0, (0, 4, 7))
        assert plan.n_blocks == 40
        assert plan.policy == "sorted"

    def test_beam1_is_path_order(self, small_volume):
        mm = MultiMapMapper((40, 12, 10), small_volume)
        plan = mm.beam_plan(1, (6, 0, 2))
        assert plan.policy == "fifo"
        assert plan.n_blocks == 12
        assert plan.merge_gap == 0

    def test_range_plan_covers_exact_cells(self, small_volume):
        mm = MultiMapMapper((40, 12, 10), small_volume)
        lo, hi = (3, 2, 1), (25, 9, 6)
        plan = mm.range_plan(lo, hi)
        n_cells = int(np.prod([b - a for a, b in zip(lo, hi)]))
        assert plan.n_blocks == n_cells
        got = np.sort(
            np.concatenate(
                [np.arange(s, s + n)
                 for s, n in zip(plan.starts, plan.lengths)]
            )
        )
        expected = np.sort(mm.lbns(enumerate_box(lo, hi)))
        np.testing.assert_array_equal(got, expected)

    def test_range_policy_is_sptf(self, small_volume):
        mm = MultiMapMapper((40, 12, 10), small_volume)
        assert mm.range_plan((0, 0, 0), (10, 4, 4)).policy == "sptf"

    def test_full_range_covers_everything(self, small_volume):
        mm = MultiMapMapper((40, 12, 10), small_volume)
        plan = mm.range_plan((0, 0, 0), (40, 12, 10))
        assert plan.n_blocks == 40 * 12 * 10

    def test_1d_dataset_range(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        mm = MultiMapMapper((200,), vol)
        plan = mm.range_plan((20,), (150,))
        assert plan.n_blocks == 130


class TestSemiSequentialTiming:
    def test_dim1_beam_runs_at_hop_cadence(self):
        """Fetching a Dim1 beam must cost about one adjacency offset per
        cell — the semi-sequential guarantee the whole paper rests on."""
        model = atlas_10k3()
        vol = LogicalVolume([model], depth=128)
        mm = MultiMapMapper((300, 64, 32), vol)
        drive = vol.drives[0]
        plan = mm.beam_plan(1, (10, 0, 5))
        res = drive.service_runs(
            plan.starts, plan.lengths, policy="fifo"
        )
        hop = vol.adjacency[0].expected_hop_ms(0)
        per_cell = res.total_ms / plan.n_runs
        assert per_cell < hop * 1.35 + 0.2

    def test_cell_blocks_supported(self, small_volume):
        mm = MultiMapMapper((20, 6, 5), small_volume, cell_blocks=2)
        coords = enumerate_box((0, 0, 0), (20, 6, 5))
        lbns = mm.lbns(coords)
        # cells occupy 2 blocks: no two first-LBNs may be 1 apart
        lbns.sort()
        assert (np.diff(lbns) >= 2).all()
        plan = mm.range_plan((0, 0, 0), (20, 6, 5))
        assert plan.n_blocks == 20 * 6 * 5 * 2
