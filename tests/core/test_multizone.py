"""Tests for MultiMap datasets spanning several zones.

The paper: "A large dataset can be mapped to basic cubes of different
sizes in different zones.  MultiMap does not map basic cubes across zone
boundaries."  Our mapper keeps one cube shape but recomputes slot packing
per zone and never lets an allocation straddle a boundary.
"""

import numpy as np
import pytest

from repro.core import MultiMapMapper
from repro.disk import synthetic_disk
from repro.lvm import LogicalVolume
from repro.mappings.base import enumerate_box


@pytest.fixture()
def spanning():
    """A dataset that cannot fit in one zone of this disk."""
    model = synthetic_disk(
        "multizone",
        settle_ms=1.0,
        settle_cylinders=8,
        surfaces=2,
        zone_specs=[(60, 120), (60, 100), (60, 80)],
        command_overhead_ms=0.05,
    )
    vol = LogicalVolume([model])
    # 24k cells on a 36k-sector disk with 120-track zones: spans zones
    mm = MultiMapMapper((100, 10, 24), vol)
    return model, vol, mm


class TestMultiZone:
    def test_allocation_spans_zones(self, spanning):
        model, vol, mm = spanning
        zones = {a.zone_index for a in mm._allocations}
        assert len(zones) >= 2

    def test_no_allocation_straddles_boundary(self, spanning):
        model, vol, mm = spanning
        geom = model.geometry
        for alloc in mm._allocations:
            zi_start = geom.zone_index_of_lbn(alloc.first_lbn)
            assert zi_start == alloc.zone_index

    def test_per_zone_packing(self, spanning):
        model, vol, mm = spanning
        for alloc in mm._allocations:
            spt = model.geometry.zone(alloc.zone_index).sectors_per_track
            assert alloc.packing == spt // mm.K[0]

    def test_bijective_across_zones(self, spanning):
        model, vol, mm = spanning
        coords = enumerate_box((0, 0, 0), mm.dims)
        lbns = mm.lbns(coords)
        assert np.unique(lbns).size == mm.n_cells

    def test_cells_remain_in_their_zone_records(self, spanning):
        model, vol, mm = spanning
        geom = model.geometry
        coords = enumerate_box((0, 0, 0), mm.dims)
        lbns = mm.lbns(coords)
        rec, _, _, _ = mm._locate(coords)
        for alloc_idx, alloc in enumerate(mm._allocations):
            sel = rec == alloc_idx
            if not sel.any():
                continue
            zi = np.array(
                [geom.zone_index_of_lbn(int(l)) for l in lbns[sel][:50]]
            )
            assert (zi == alloc.zone_index).all()

    def test_semi_sequential_holds_in_inner_zone(self, spanning):
        """Adjacency hops must stay rotational-latency-free in later
        zones too (each zone derives its own A and w)."""
        model, vol, mm = spanning
        drive = vol.drives[0]
        inner = mm._allocations[-1]
        first_cube = inner.first_cube
        cube_coord = np.unravel_index(first_cube, mm.plan.grid, order="F")
        x = [int(c * k) for c, k in zip(cube_coord, mm.K)]
        # hop along the deepest in-cube dimension of the inner-zone cube
        steps = min(mm.K[2], 6)
        cells = np.array(
            [[x[0], x[1], x[2] + j] for j in range(steps)]
        )
        lbns = mm.lbns(cells)
        # position exactly on the first cell, then time the hops alone
        drive.reset(track=model.geometry.track_of(int(lbns[0])))
        drive.service(int(lbns[0]))
        res = drive.service_lbns(lbns[1:], policy="fifo")
        spt = inner.track_length
        per_hop = res.total_ms / (steps - 1)
        hop_budget = (
            model.mechanics.settle_ms
            + model.mechanics.command_overhead_ms
            + 4 * model.mechanics.rotation_ms / spt
        )
        assert per_hop < hop_budget
