"""Tests for the adjacency model: adjacent blocks, semi-sequential paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import AdjacencyModel, DiskDrive
from repro.errors import AdjacencyError


class TestToyDiskPaperFigures:
    """The toy disk (T=5, D=9, zero skew) matches the paper's Figures 2-4."""

    def test_first_adjacent_of_0_is_5(self, toy_adjacency):
        assert toy_adjacency.get_adjacent(0, 1) == 5

    def test_first_adjacent_of_5_is_10(self, toy_adjacency):
        assert toy_adjacency.get_adjacent(5, 1) == 10

    def test_third_adjacent_of_0_is_15(self, toy_adjacency):
        assert toy_adjacency.get_adjacent(0, 3) == 15

    def test_third_adjacent_of_15_is_30(self, toy_adjacency):
        assert toy_adjacency.get_adjacent(15, 3) == 30

    def test_ninth_adjacent_of_0_is_45(self, toy_adjacency):
        assert toy_adjacency.get_adjacent(0, 9) == 45

    def test_track_boundaries(self, toy_adjacency):
        assert toy_adjacency.get_track_boundaries(0) == (0, 5)
        assert toy_adjacency.get_track_boundaries(7) == (5, 10)


class TestInterface:
    def test_depth_defaults_to_r_times_c(self, small_model):
        adj = AdjacencyModel.for_model(small_model)
        expected = (
            small_model.geometry.surfaces
            * small_model.mechanics.settle_cylinders
        )
        assert adj.D == expected

    def test_depth_override(self, small_model):
        adj = AdjacencyModel.for_model(small_model, depth=4)
        assert adj.D == 4

    def test_depth_above_settle_region_rejected(self, small_model):
        max_d = (
            small_model.geometry.surfaces
            * small_model.mechanics.settle_cylinders
        )
        with pytest.raises(AdjacencyError):
            AdjacencyModel.for_model(small_model, depth=max_d + 1)

    def test_step_zero_rejected(self, small_adjacency):
        with pytest.raises(AdjacencyError):
            small_adjacency.get_adjacent(0, 0)

    def test_step_beyond_d_rejected(self, small_adjacency):
        with pytest.raises(AdjacencyError):
            small_adjacency.get_adjacent(0, small_adjacency.D + 1)

    def test_zone_boundary_rejected(self, small_model):
        adj = AdjacencyModel.for_model(small_model)
        geom = small_model.geometry
        last_track_zone0 = geom.zone_tracks(0) - 1
        lbn = geom.track_first_lbn(last_track_zone0)
        with pytest.raises(AdjacencyError):
            adj.get_adjacent(lbn, 1)

    def test_adjacent_is_on_expected_track(self, small_adjacency, small_model):
        geom = small_model.geometry
        for j in (1, 2, 7, small_adjacency.D):
            target = small_adjacency.get_adjacent(1000, j)
            assert geom.track_of(target) == geom.track_of(1000) + j

    def test_vectorised_matches_scalar(self, small_adjacency):
        lbns = np.array([0, 3, 119, 240, 1001])
        for j in (1, 2, 5):
            vec = small_adjacency.get_adjacent_array(lbns, j)
            scal = [small_adjacency.get_adjacent(int(x), j) for x in lbns]
            np.testing.assert_array_equal(vec, scal)

    def test_vectorised_rejects_boundary(self, small_model):
        adj = AdjacencyModel.for_model(small_model)
        geom = small_model.geometry
        last = geom.track_first_lbn(geom.zone_tracks(0) - 1)
        with pytest.raises(AdjacencyError):
            adj.get_adjacent_array(np.array([0, last]), 1)

    def test_semi_sequential_path_links(self, small_adjacency):
        path = small_adjacency.semi_sequential_path(0, 6, step=2)
        for a, b in zip(path, path[1:]):
            assert small_adjacency.get_adjacent(int(a), 2) == int(b)

    def test_max_dimensions_equation5(self, small_model):
        # Nmax = 2 + log2(D)
        adj = AdjacencyModel.for_model(small_model, depth=16)
        assert adj.max_dimensions() == 6


class TestTimingGuarantees:
    """The defining property: every adjacent block costs exactly one settle
    with no rotational latency, for every step 1..D."""

    @pytest.mark.parametrize("step", [1, 2, 3, 8, 16])
    def test_hop_cost_is_settle_plus_alignment(self, small_model, step):
        adj = AdjacencyModel.for_model(small_model)
        drive = DiskDrive(small_model)
        lbn = 240  # mid zone 0
        drive.service(lbn)
        target = adj.get_adjacent(lbn, step)
        tm = drive.service(target)
        zone = small_model.geometry.zone(0)
        expected = adj.expected_hop_ms(0)
        # hop = settle + residual alignment + 1-sector transfer
        sector = small_model.mechanics.rotation_ms / zone.sectors_per_track
        assert tm.seek_ms == pytest.approx(small_model.mechanics.settle_ms)
        assert tm.total_ms == pytest.approx(expected + sector, abs=sector)

    def test_all_steps_equal_cost(self, small_model):
        """Paper: first and D-th adjacent block are equally fast."""
        adj = AdjacencyModel.for_model(small_model)
        costs = []
        for step in range(1, adj.D + 1):
            drive = DiskDrive(small_model)
            drive.service(240)
            tm = drive.service(adj.get_adjacent(240, step))
            costs.append(tm.total_ms)
        assert max(costs) - min(costs) < 1e-6

    def test_semi_sequential_beats_nearby_random_by_4x(self, atlas_model):
        """Paper §3.2: semi-sequential outperforms nearby access within D
        tracks by about a factor of four."""
        adj = AdjacencyModel.for_model(atlas_model)
        drive = DiskDrive(atlas_model)
        n = 200
        path = adj.semi_sequential_path(0, n, 1)
        semi = drive.service_lbns(path, policy="fifo").total_ms / n

        rng = np.random.default_rng(11)
        geom = atlas_model.geometry
        start_track = geom.track_of(0)
        tracks = start_track + rng.integers(1, adj.D, size=n)
        sectors = rng.integers(0, geom.track_length(0), size=n)
        lbns = geom.lbns_from(tracks, sectors)
        drive2 = DiskDrive(atlas_model)
        nearby = drive2.service_lbns(lbns, policy="fifo").total_ms / n

        assert nearby / semi > 3.0

    @given(
        lbn=st.integers(min_value=0, max_value=10_000),
        step=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_zero_rotational_latency(self, small_model, lbn, step):
        adj = AdjacencyModel.for_model(small_model)
        drive = DiskDrive(small_model)
        drive.service(lbn)
        try:
            target = adj.get_adjacent(lbn, step)
        except AdjacencyError:
            return
        tm = drive.service(target)
        zone = small_model.geometry.zone(
            small_model.geometry.zone_index_of_lbn(lbn)
        )
        two_sectors = 2 * small_model.mechanics.rotation_ms / zone.sectors_per_track
        assert tm.rotation_ms < two_sectors
