"""Tests for black-box drive characterisation.

The extractor must recover the mechanical parameters *through the public
service interface only* — mirroring how DIXtrac measured real drives.
"""

import pytest

from repro.disk import DiskDrive, extract_profile, measure_seek_profile, synthetic_disk


@pytest.fixture(scope="module")
def probe_model():
    """Small disk so exhaustive sector probing stays fast."""
    return synthetic_disk(
        "probe",
        rpm=10_000,
        settle_ms=1.0,
        settle_cylinders=4,
        surfaces=2,
        zone_specs=[(120, 64), (120, 48)],
        avg_seek_ms=3.0,
        full_stroke_ms=6.0,
    )


@pytest.fixture(scope="module")
def profile(probe_model):
    return extract_profile(DiskDrive(probe_model), samples=3)


class TestSeekMeasurement:
    def test_measured_curve_matches_model(self, probe_model):
        drive = DiskDrive(probe_model)
        curve = measure_seek_profile(drive, distances=[1, 2, 4, 8, 50], samples=3)
        for m in curve:
            expected = probe_model.mechanics.seek_time(m.distance_cylinders)
            assert m.seek_ms == pytest.approx(expected)

    def test_default_distances_cover_settle_region(self, probe_model):
        drive = DiskDrive(probe_model)
        curve = measure_seek_profile(drive, samples=1)
        distances = [m.distance_cylinders for m in curve]
        assert probe_model.mechanics.settle_cylinders in distances

    def test_curve_is_sorted_and_monotone(self, profile):
        dists = [m.distance_cylinders for m in profile.seek_curve]
        assert dists == sorted(dists)
        times = [m.seek_ms for m in profile.seek_curve]
        assert all(b >= a - 1e-9 for a, b in zip(times, times[1:]))


class TestExtraction:
    def test_settle_time_recovered(self, profile, probe_model):
        assert profile.settle_ms == pytest.approx(
            probe_model.mechanics.settle_ms, rel=0.01
        )

    def test_settle_region_recovered(self, profile, probe_model):
        assert profile.settle_cylinders == probe_model.mechanics.settle_cylinders

    def test_adjacency_depth_is_r_times_c(self, profile, probe_model):
        expected = (
            probe_model.geometry.surfaces
            * probe_model.mechanics.settle_cylinders
        )
        assert profile.adjacency_depth == expected

    def test_first_adjacent_has_same_sector_index(self, profile, probe_model):
        # skew-aligned drives: first adjacent block = same sector, next track
        for zi, _zone in enumerate(probe_model.geometry.zones):
            assert profile.first_adjacent_sector_delta[zi] == 0

    def test_measured_hop_cost_matches_skew_rotation(self, profile, probe_model):
        # start-to-start semi-sequential cadence = one skew of rotation;
        # hop_ms excludes the one-sector transfer.
        mech = probe_model.mechanics
        for zi, zone in enumerate(probe_model.geometry.zones):
            spt = zone.sectors_per_track
            sector = mech.rotation_ms / spt
            predicted = zone.skew_sectors * sector - sector
            assert profile.hop_ms[zi] == pytest.approx(predicted, rel=0.05)
        assert all(h >= profile.settle_ms - 1e-9 for h in profile.hop_ms)

    def test_seek_at_lookup(self, profile):
        first = profile.seek_curve[0]
        assert profile.seek_at(first.distance_cylinders) == first.seek_ms
        with pytest.raises(KeyError):
            profile.seek_at(10**9)
