"""Tests for the mechanical timing model (seek curve, rotation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.mechanics import DiskMechanics, SeekProfile
from repro.errors import GeometryError


def profile(**overrides):
    params = dict(
        settle_ms=1.2,
        settle_cylinders=32,
        max_cylinders=30_000,
        avg_seek_ms=4.5,
        full_stroke_ms=10.0,
    )
    params.update(overrides)
    return SeekProfile(**params)


class TestSeekProfile:
    def test_zero_distance_is_free(self):
        assert profile().time(0) == 0.0

    def test_settle_region_is_flat(self):
        p = profile()
        times = [p.time(d) for d in range(1, 33)]
        assert all(t == pytest.approx(1.2) for t in times)

    def test_step_after_settle_region(self):
        p = profile()
        assert p.time(33) >= 1.2 + p.step_ms

    def test_monotone_nondecreasing(self):
        p = profile()
        d = np.arange(0, p.max_cylinders + 1)
        t = p.time(d)
        assert (np.diff(t) >= -1e-12).all()

    def test_average_anchor(self):
        p = profile()
        assert p.time(p.knee_cylinders) == pytest.approx(4.5)

    def test_full_stroke_anchor(self):
        p = profile()
        assert p.time(p.max_cylinders) == pytest.approx(10.0)

    def test_vectorised_matches_scalar(self):
        p = profile()
        d = np.array([0, 1, 32, 33, 500, 10_000, 30_000])
        vec = p.time(d)
        scal = np.array([p.time(int(x)) for x in d])
        np.testing.assert_allclose(vec, scal)

    def test_rejects_negative_settle(self):
        with pytest.raises(GeometryError):
            profile(settle_ms=-1.0)

    def test_rejects_inverted_anchors(self):
        with pytest.raises(GeometryError):
            profile(avg_seek_ms=0.5)

    def test_rejects_tiny_max(self):
        with pytest.raises(GeometryError):
            profile(max_cylinders=10)

    @given(
        d1=st.integers(min_value=0, max_value=30_000),
        d2=st.integers(min_value=0, max_value=30_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_monotone(self, d1, d2):
        p = profile()
        lo, hi = sorted((d1, d2))
        assert p.time(lo) <= p.time(hi) + 1e-12


class TestDiskMechanics:
    def test_rotation_from_rpm(self):
        m = DiskMechanics(rpm=10_000, seek=profile())
        assert m.rotation_ms == pytest.approx(6.0)

    def test_head_switch_defaults_to_settle(self):
        m = DiskMechanics(rpm=10_000, seek=profile())
        assert m.head_switch_ms == pytest.approx(1.2)

    def test_head_switch_override(self):
        m = DiskMechanics(rpm=10_000, seek=profile(), head_switch_ms=0.8)
        assert m.head_switch_ms == pytest.approx(0.8)

    def test_avg_rotational_latency_is_half_revolution(self):
        m = DiskMechanics(rpm=10_000, seek=profile())
        assert m.avg_rotational_latency_ms() == pytest.approx(3.0)

    def test_seek_time_delegates(self):
        m = DiskMechanics(rpm=10_000, seek=profile())
        assert m.seek_time(5) == pytest.approx(1.2)

    def test_rejects_nonpositive_rpm(self):
        with pytest.raises(GeometryError):
            DiskMechanics(rpm=0, seek=profile())

    def test_with_settle_produces_new_settle(self):
        m = DiskMechanics(rpm=10_000, seek=profile())
        m2 = m.with_settle(2.0)
        assert m2.settle_ms == pytest.approx(2.0)
        assert m2.head_switch_ms == pytest.approx(2.0)
        assert m.settle_ms == pytest.approx(1.2)  # original untouched
