"""Tests for the disk model factories."""

import pytest

from repro.disk import (
    DiskDrive,
    atlas_10k3,
    cheetah_36es,
    paper_disks,
    synthetic_disk,
    toy_disk,
)


class TestPaperDisks:
    def test_two_disks_in_paper_order(self):
        disks = paper_disks()
        assert [d.name for d in disks] == [
            "Maxtor Atlas 10k III",
            "Seagate Cheetah 36ES",
        ]

    def test_ten_k_rpm(self):
        for model in paper_disks():
            assert model.mechanics.rotation_ms == pytest.approx(6.0)

    def test_settle_times_comparable(self):
        """The paper: both disks have comparable settle times, which is
        why MultiMap performs almost identically on them."""
        a, c = paper_disks()
        assert abs(a.mechanics.settle_ms - c.mechanics.settle_ms) < 0.5

    def test_command_overhead_present(self):
        for model in paper_disks():
            assert model.mechanics.command_overhead_ms > 0

    def test_zone_count(self):
        assert len(atlas_10k3().geometry.zones) == 8
        assert len(cheetah_36es().geometry.zones) == 9

    def test_repr_shows_capacity(self):
        assert "GB" in repr(atlas_10k3())


class TestToyDisk:
    def test_track_length_five(self):
        assert toy_disk().geometry.track_length(0) == 5

    def test_zero_skew(self):
        for zone in toy_disk().geometry.zones:
            assert zone.skew_sectors == 0

    def test_one_ms_per_sector(self):
        model = toy_disk()
        spt = model.geometry.track_length(0)
        assert model.mechanics.rotation_ms / spt == pytest.approx(1.0)

    def test_supports_depth_nine(self):
        model = toy_disk()
        assert (
            model.geometry.surfaces * model.mechanics.settle_cylinders == 9
        )


class TestSyntheticDisk:
    def test_defaults_valid(self):
        model = synthetic_disk()
        DiskDrive(model).service(0)

    def test_parameters_respected(self):
        model = synthetic_disk(
            "x", rpm=7200, settle_ms=0.8, surfaces=3,
            zone_specs=[(50, 100)], command_overhead_ms=0.2,
        )
        assert model.mechanics.rotation_ms == pytest.approx(60000 / 7200)
        assert model.geometry.surfaces == 3
        assert model.mechanics.command_overhead_ms == 0.2

    def test_streaming_bandwidth_realistic(self):
        """Outer-zone streaming of the paper drives sits in the tens of
        MB/s, as 2002-era 10k drives did."""
        for model in paper_disks():
            bw = DiskDrive(model).streaming_bandwidth_bytes_per_s(0) / 1e6
            assert 30 < bw < 80
