"""Tests for zoned geometry: LBN <-> CHS, skew, angles, vectorisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.geometry import DiskGeometry, Zone
from repro.errors import GeometryError


def two_zone_geometry():
    """2 surfaces; zone0: 3 cyl x 10 spt (skew 2); zone1: 2 cyl x 8 spt."""
    return DiskGeometry(
        [
            Zone(0, 0, 3, 10, 2),
            Zone(1, 3, 2, 8, 1),
        ],
        surfaces=2,
    )


class TestConstruction:
    def test_counts(self):
        g = two_zone_geometry()
        assert g.n_cylinders == 5
        assert g.n_tracks == 10
        assert g.n_lbns == 6 * 10 + 4 * 8

    def test_capacity(self):
        g = two_zone_geometry()
        assert g.capacity_bytes == g.n_lbns * 512

    def test_zone_indices_must_be_sequential(self):
        with pytest.raises(GeometryError):
            DiskGeometry([Zone(1, 0, 3, 10, 0)], surfaces=1)

    def test_zones_must_tile_cylinders(self):
        with pytest.raises(GeometryError):
            DiskGeometry(
                [Zone(0, 0, 3, 10, 0), Zone(1, 4, 2, 8, 0)], surfaces=1
            )

    def test_rejects_zero_surfaces(self):
        with pytest.raises(GeometryError):
            DiskGeometry([Zone(0, 0, 3, 10, 0)], surfaces=0)

    def test_zone_rejects_bad_skew(self):
        with pytest.raises(GeometryError):
            Zone(0, 0, 3, 10, 10)

    def test_zone_rejects_empty(self):
        with pytest.raises(GeometryError):
            Zone(0, 0, 0, 10, 0)


class TestScalarAccessors:
    def test_first_lbn_is_track0_sector0(self):
        g = two_zone_geometry()
        assert g.chs(0) == (0, 0, 0)

    def test_sector_advances_within_track(self):
        g = two_zone_geometry()
        assert g.chs(7) == (0, 0, 7)

    def test_head_advances_after_track(self):
        g = two_zone_geometry()
        assert g.chs(10) == (0, 1, 0)

    def test_cylinder_advances_after_all_heads(self):
        g = two_zone_geometry()
        assert g.chs(20) == (1, 0, 0)

    def test_second_zone_lbn(self):
        g = two_zone_geometry()
        # zone 1 starts at LBN 60, cylinder 3
        assert g.chs(60) == (3, 0, 0)
        assert g.chs(60 + 8) == (3, 1, 0)

    def test_track_boundaries(self):
        g = two_zone_geometry()
        assert g.track_boundaries(0) == (0, 10)
        assert g.track_boundaries(15) == (10, 20)
        assert g.track_boundaries(60) == (60, 68)

    def test_track_length_per_zone(self):
        g = two_zone_geometry()
        assert g.track_length(0) == 10
        assert g.track_length(6) == 8

    def test_lbn_roundtrip(self):
        g = two_zone_geometry()
        for lbn in range(g.n_lbns):
            track = g.track_of(lbn)
            sector = g.sector_of(lbn)
            assert g.lbn(track, sector) == lbn

    def test_lbn_rejects_bad_sector(self):
        g = two_zone_geometry()
        with pytest.raises(GeometryError):
            g.lbn(0, 10)

    def test_check_lbn_bounds(self):
        g = two_zone_geometry()
        with pytest.raises(GeometryError):
            g.check_lbn(-1)
        with pytest.raises(GeometryError):
            g.check_lbn(g.n_lbns)

    def test_zone_lbn_span(self):
        g = two_zone_geometry()
        assert g.zone_lbn_span(0) == (0, 60)
        assert g.zone_lbn_span(1) == (60, 92)


class TestAngles:
    def test_first_track_angles_are_sector_fractions(self):
        g = two_zone_geometry()
        for s in range(10):
            assert g.start_angle(s) == pytest.approx(s / 10)

    def test_skew_offsets_consecutive_tracks(self):
        g = two_zone_geometry()
        # track 1 (in-zone index 1): sector 0 sits at angle 2/10
        assert g.start_angle(10) == pytest.approx(0.2)
        # track 2: angle 4/10
        assert g.start_angle(20) == pytest.approx(0.4)

    def test_skew_wraps_modulo_track(self):
        g = two_zone_geometry()
        # track 5 of zone 0: skew*5 = 10 = 0 mod 10
        assert g.start_angle(50) == pytest.approx(0.0)

    def test_zone1_skew(self):
        g = two_zone_geometry()
        assert g.start_angle(60) == pytest.approx(0.0)
        assert g.start_angle(68) == pytest.approx(1 / 8)


class TestVectorised:
    def test_decompose_matches_scalar(self):
        g = two_zone_geometry()
        lbns = np.arange(g.n_lbns)
        zi, track, sector, spt, angle = g.decompose(lbns)
        for i, lbn in enumerate(lbns):
            assert zi[i] == g.zone_index_of_lbn(int(lbn))
            assert track[i] == g.track_of(int(lbn))
            assert sector[i] == g.sector_of(int(lbn))
            assert angle[i] == pytest.approx(g.start_angle(int(lbn)))

    def test_track_first_lbns(self):
        g = two_zone_geometry()
        tracks = np.arange(g.n_tracks)
        out = g.track_first_lbns(tracks)
        expected = [g.track_first_lbn(int(t)) for t in tracks]
        np.testing.assert_array_equal(out, expected)

    def test_lbns_from_roundtrip(self):
        g = two_zone_geometry()
        lbns = np.arange(g.n_lbns)
        _, track, sector, _, _ = g.decompose(lbns)
        np.testing.assert_array_equal(g.lbns_from(track, sector), lbns)

    def test_decompose_rejects_out_of_range(self):
        g = two_zone_geometry()
        with pytest.raises(GeometryError):
            g.decompose(np.array([g.n_lbns]))


class TestPaperScaleModels:
    def test_atlas_d_parameters(self, atlas_model):
        geom = atlas_model.geometry
        mech = atlas_model.mechanics
        # R * C = 128, the D the paper uses for both disks
        assert geom.surfaces * mech.settle_cylinders == 128

    def test_cheetah_d_parameters(self, cheetah_model):
        geom = cheetah_model.geometry
        mech = cheetah_model.mechanics
        assert geom.surfaces * mech.settle_cylinders == 128

    def test_capacities_near_36_7_gb(self, atlas_model, cheetah_model):
        for m in (atlas_model, cheetah_model):
            assert 35e9 < m.capacity_bytes < 40e9

    def test_track_lengths_decrease_inward(self, atlas_model):
        spts = [z.sectors_per_track for z in atlas_model.geometry.zones]
        assert spts == sorted(spts, reverse=True)

    def test_skew_exceeds_settle_rotation(self, atlas_model):
        mech = atlas_model.mechanics
        for z in atlas_model.geometry.zones:
            settle_sectors = (
                z.sectors_per_track * mech.settle_ms / mech.rotation_ms
            )
            assert z.skew_sectors >= settle_sectors

    @given(lbn=st.integers(min_value=0))
    @settings(max_examples=200, deadline=None)
    def test_property_roundtrip_atlas(self, atlas_model, lbn):
        g = atlas_model.geometry
        lbn = lbn % g.n_lbns
        track = g.track_of(lbn)
        sector = g.sector_of(lbn)
        assert g.lbn(track, sector) == lbn
        lo, hi = g.track_boundaries(lbn)
        assert lo <= lbn < hi
        assert hi - lo == g.track_length(track)
