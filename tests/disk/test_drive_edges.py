"""Edge-path tests for the drive simulator: cross-zone batches, collect
paths, degenerate inputs, adjacency corner cases."""

import numpy as np
import pytest

from repro.disk import AdjacencyModel, DiskDrive, toy_disk
from repro.errors import AdjacencyError, GeometryError


class TestCrossZoneBatches:
    def test_cross_zone_collect(self, small_model):
        geom = small_model.geometry
        lo, hi = geom.zone_lbn_span(0)
        drive = DiskDrive(small_model)
        res = drive.service_runs(
            np.array([hi - 2, 10]),
            np.array([4, 2]),
            policy="fifo",
            collect=True,
        )
        assert res.per_request_ms is not None
        assert res.per_request_ms.size == 2
        assert res.order.tolist() == [0, 1]

    def test_cross_zone_sorted_order(self, small_model):
        geom = small_model.geometry
        lo, hi = geom.zone_lbn_span(0)
        drive = DiskDrive(small_model)
        res = drive.service_runs(
            np.array([hi - 1, 0]),
            np.array([2, 1]),
            policy="sorted",
            collect=True,
        )
        assert res.order.tolist() == [1, 0]

    def test_run_spanning_three_zones_scalar(self):
        from repro.disk import synthetic_disk

        model = synthetic_disk(
            "tiny3z",
            surfaces=1,
            settle_cylinders=2,
            zone_specs=[(3, 20), (3, 16), (3, 12)],
        )
        geom = model.geometry
        drive = DiskDrive(model)
        # run from zone 0 into zone 2
        start = geom.zone_lbn_span(0)[1] - 4
        n = 4 + geom.zone_lbn_span(1)[1] - geom.zone_lbn_span(1)[0] + 3
        tm = drive.service(start, nblocks=n)
        assert tm.total_ms > 0
        assert drive.current_track == geom.track_of(start + n - 1)


class TestServiceStateEvolution:
    def test_head_lands_on_last_run_track(self, small_drive):
        starts = np.array([10, 500, 900])
        small_drive.service_runs(starts, np.ones(3, dtype=int), policy="fifo")
        geom = small_drive.geometry
        assert small_drive.current_track == geom.track_of(900)

    def test_time_accumulates_across_batches(self, small_drive):
        small_drive.service_runs(
            np.array([0]), np.array([1]), policy="fifo"
        )
        t1 = small_drive.now_ms
        small_drive.service_runs(
            np.array([1000]), np.array([1]), policy="fifo"
        )
        assert small_drive.now_ms > t1

    def test_reset_rejects_bad_track(self, small_drive):
        with pytest.raises(GeometryError):
            small_drive.reset(track=10**9)


class TestAdjacencyEdges:
    def test_toy_expected_hop_uses_settle_when_offset_zero(self, toy_model):
        adj = AdjacencyModel.for_model(toy_model, depth=9)
        assert adj.adjacency_offset_sectors(0) == 0
        assert adj.expected_hop_ms(0) == pytest.approx(
            toy_model.mechanics.settle_ms
        )

    def test_semi_sequential_path_single_element(self, small_adjacency):
        path = small_adjacency.semi_sequential_path(42, 1)
        assert path.tolist() == [42]

    def test_get_adjacent_near_zone_end_raises_not_wraps(self, small_model):
        adj = AdjacencyModel.for_model(small_model)
        geom = small_model.geometry
        # second-to-last track of zone 0: step 2 would cross
        t = geom.zone_tracks(0) - 2
        lbn = geom.track_first_lbn(t)
        assert adj.get_adjacent(lbn, 1) > lbn
        with pytest.raises(AdjacencyError):
            adj.get_adjacent(lbn, 2)

    def test_max_depth_equals_r_times_c_everywhere(self, small_model):
        adj = AdjacencyModel.for_model(small_model)
        geom = small_model.geometry
        rng = np.random.default_rng(1)
        for _ in range(20):
            lbn = int(rng.integers(0, geom.zone_lbn_span(0)[1] // 2))
            target = adj.get_adjacent(lbn, adj.D)
            d_cyl = abs(
                geom.cylinder_of(target) - geom.cylinder_of(lbn)
            )
            assert d_cyl <= small_model.mechanics.settle_cylinders


class TestToyDiskTiming:
    def test_one_ms_per_sector_streaming(self, toy_model):
        drive = DiskDrive(toy_model)
        drive.service(0)
        tm = drive.service(1, nblocks=3)
        assert tm.transfer_ms == pytest.approx(3.0)

    def test_full_revolution_is_track_length_ms(self, toy_model):
        drive = DiskDrive(toy_model)
        drive.service(0)
        tm = drive.service(0)
        # re-reading the same sector: one revolution minus nothing special
        assert tm.total_ms == pytest.approx(5.0, abs=0.01)
