"""Tests for the firmware track cache (modern-storage ablation feature)."""

import numpy as np
import pytest

from repro.disk import DiskDrive, TrackCache


class TestTrackCache:
    def test_miss_then_hit(self):
        c = TrackCache(4)
        assert not c.hit(3, 3)
        c.insert(3, 3)
        assert c.hit(3, 3)

    def test_multi_track_hit_needs_all(self):
        c = TrackCache(4)
        c.insert(3, 4)
        assert c.hit(3, 4)
        assert not c.hit(3, 5)

    def test_lru_eviction(self):
        c = TrackCache(2)
        c.insert(1, 1)
        c.insert(2, 2)
        c.insert(3, 3)  # evicts 1
        assert not c.hit(1, 1)
        assert c.hit(2, 2)
        assert c.hit(3, 3)

    def test_hit_refreshes_recency(self):
        c = TrackCache(2)
        c.insert(1, 1)
        c.insert(2, 2)
        c.hit(1, 1)      # 1 becomes most recent
        c.insert(3, 3)   # evicts 2
        assert c.hit(1, 1)
        assert not c.hit(2, 2)

    def test_clear(self):
        c = TrackCache(4)
        c.insert(1, 2)
        c.clear()
        assert not c.hit(1, 1)


class TestCachedDrive:
    def test_no_cache_by_default(self, small_model):
        assert DiskDrive(small_model).cache is None

    def test_repeat_read_hits(self, small_model):
        drive = DiskDrive(small_model, cache_tracks=8)
        miss = drive.service(100).total_ms
        hit = drive.service(100).total_ms
        assert hit < miss / 3
        assert hit == pytest.approx(
            small_model.mechanics.command_overhead_ms
            + DiskDrive.CACHE_BLOCK_MS
        )

    def test_same_track_neighbour_hits(self, small_model):
        drive = DiskDrive(small_model, cache_tracks=8)
        drive.service(100)
        hit = drive.service(101)
        assert hit.seek_ms == 0.0
        assert hit.rotation_ms == 0.0

    def test_other_track_still_misses(self, small_model):
        drive = DiskDrive(small_model, cache_tracks=8)
        drive.service(100)
        spt = small_model.geometry.track_length(0)
        miss = drive.service(100 + 5 * spt)
        assert miss.total_ms > 0.5

    def test_hits_do_not_move_the_head(self, small_model):
        drive = DiskDrive(small_model, cache_tracks=8)
        drive.service(100)
        track = drive.current_track
        drive.service(100)  # hit
        assert drive.current_track == track

    def test_batch_path_uses_cache(self, small_model):
        drive = DiskDrive(small_model, cache_tracks=8)
        lbns = np.array([100, 103, 100, 101])
        res = drive.service_lbns(lbns, policy="fifo", collect=True)
        # first request misses, the rest hit the cached track
        assert res.per_request_ms[0] > res.per_request_ms[1] * 3
        assert res.n_requests == 4

    def test_cached_beats_uncached_on_clustered_reads(self, small_model):
        rng = np.random.default_rng(2)
        spt = small_model.geometry.track_length(0)
        lbns = rng.integers(0, 4 * spt, size=200)  # 4 tracks, heavy reuse
        cold = DiskDrive(small_model).service_lbns(lbns, policy="fifo")
        warm = DiskDrive(small_model, cache_tracks=8).service_lbns(
            lbns, policy="fifo"
        )
        assert warm.total_ms < cold.total_ms / 5
