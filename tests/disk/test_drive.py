"""Tests for the drive simulator: access timing, batch service, policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import DiskDrive, synthetic_disk
from repro.errors import GeometryError


class TestSingleRequests:
    def test_read_at_head_position_costs_less_than_a_revolution(
        self, small_drive
    ):
        tm = small_drive.service(0)
        assert tm.seek_ms == 0.0
        assert tm.total_ms < small_drive.mechanics.rotation_ms + 1e-9

    def test_same_track_reread_costs_full_revolution(self, small_drive):
        small_drive.service(0)
        tm = small_drive.service(0)
        # one sector passed; waiting for it again costs rot - 1 sector
        rot = small_drive.mechanics.rotation_ms
        spt = small_drive.geometry.track_length(0)
        assert tm.rotation_ms == pytest.approx(rot - rot / spt)

    def test_sequential_blocks_stream(self, small_drive):
        spt = small_drive.geometry.track_length(0)
        rot = small_drive.mechanics.rotation_ms
        small_drive.service(0)
        tm = small_drive.service(1, nblocks=spt - 1)
        assert tm.seek_ms == 0.0
        assert tm.rotation_ms == pytest.approx(0.0, abs=1e-9)
        assert tm.transfer_ms == pytest.approx((spt - 1) * rot / spt)

    def test_head_switch_cost(self, small_drive):
        geom = small_drive.geometry
        mech = small_drive.mechanics
        small_drive.service(0)
        # same cylinder, other surface
        lbn = geom.track_first_lbn(1)
        tm = small_drive.service(lbn)
        assert tm.seek_ms == pytest.approx(mech.head_switch_ms)

    def test_seek_cost_uses_profile(self, small_drive):
        geom = small_drive.geometry
        mech = small_drive.mechanics
        small_drive.service(0)
        # 100 cylinders away: beyond the settle region (C = 8)
        lbn = geom.track_first_lbn(100 * geom.surfaces)
        tm = small_drive.service(lbn)
        assert tm.seek_ms == pytest.approx(float(mech.seek_time(100)))
        assert tm.seek_ms > mech.settle_ms

    def test_track_boundary_crossing_costs_one_skew(self, small_drive):
        geom = small_drive.geometry
        rot = small_drive.mechanics.rotation_ms
        spt = geom.track_length(0)
        skew = geom.zone(0).skew_sectors
        small_drive.service(0)
        tm = small_drive.service(1, nblocks=2 * spt - 2)  # crosses one track
        assert tm.switch_ms == pytest.approx(skew * rot / spt)

    def test_full_sweep_updates_state(self, small_drive):
        tm = small_drive.service(0, nblocks=5)
        assert small_drive.now_ms == pytest.approx(tm.end_ms)
        assert small_drive.current_track == 0

    def test_rejects_zero_blocks(self, small_drive):
        with pytest.raises(GeometryError):
            small_drive.service(0, nblocks=0)

    def test_rejects_overflow_run(self, small_drive):
        n = small_drive.geometry.n_lbns
        with pytest.raises(GeometryError):
            small_drive.service(n - 1, nblocks=2)

    def test_positioning_time_has_no_side_effects(self, small_drive):
        before = (small_drive.now_ms, small_drive.current_track)
        small_drive.positioning_time(500)
        assert (small_drive.now_ms, small_drive.current_track) == before

    def test_reset(self, small_drive):
        small_drive.service(1000)
        small_drive.reset()
        assert small_drive.now_ms == 0.0
        assert small_drive.current_track == 0

    def test_randomize_position(self, small_drive, rng):
        small_drive.randomize_position(rng)
        assert 0 <= small_drive.current_track < small_drive.geometry.n_tracks
        assert 0 <= small_drive.now_ms < small_drive.mechanics.rotation_ms


class TestZoneCrossing:
    def test_run_across_zone_boundary_scalar(self, small_drive):
        geom = small_drive.geometry
        lo, hi = geom.zone_lbn_span(0)
        tm = small_drive.service(hi - 2, nblocks=4)
        # 2 sectors in zone 0, 2 in zone 1, one boundary
        rot = small_drive.mechanics.rotation_ms
        expected = 2 * rot / geom.zone(0).sectors_per_track + 2 * rot / geom.zone(
            1
        ).sectors_per_track
        assert tm.transfer_ms == pytest.approx(expected)
        assert tm.switch_ms > 0

    def test_batch_with_zone_crossing_run_falls_back(self, small_drive):
        geom = small_drive.geometry
        lo, hi = geom.zone_lbn_span(0)
        res = small_drive.service_runs(
            np.array([hi - 2, 0]), np.array([4, 3]), policy="sorted"
        )
        assert res.n_requests == 2
        assert res.n_blocks == 7


class TestBatchService:
    def test_empty_batch(self, small_drive):
        res = small_drive.service_runs(np.array([]), np.array([]))
        assert res.total_ms == 0.0
        assert res.n_requests == 0

    def test_batch_matches_sequential_service_fifo(self, small_model):
        starts = np.array([0, 500, 1200, 7, 3000])
        lengths = np.array([3, 1, 10, 2, 5])
        d1 = DiskDrive(small_model)
        batch = d1.service_runs(starts, lengths, policy="fifo")
        d2 = DiskDrive(small_model)
        total = 0.0
        for s, n in zip(starts, lengths):
            tm = d2.service(int(s), int(n))
            total += tm.total_ms
        assert batch.total_ms == pytest.approx(total)
        assert d1.now_ms == pytest.approx(d2.now_ms)
        assert d1.current_track == d2.current_track

    def test_batch_matches_sequential_service_sorted(self, small_model):
        starts = np.array([900, 20, 4000, 123])
        lengths = np.array([2, 2, 2, 2])
        d1 = DiskDrive(small_model)
        batch = d1.service_runs(starts, lengths, policy="sorted")
        order = np.argsort(starts)
        d2 = DiskDrive(small_model)
        total = sum(
            d2.service(int(starts[i]), int(lengths[i])).total_ms
            for i in order
        )
        assert batch.total_ms == pytest.approx(total)

    def test_sorted_no_slower_than_fifo_for_scattered(self, small_model):
        rng = np.random.default_rng(7)
        starts = rng.integers(0, small_model.geometry.n_lbns - 1, size=200)
        lengths = np.ones_like(starts)
        fifo = DiskDrive(small_model).service_runs(
            starts, lengths, policy="fifo"
        )
        srt = DiskDrive(small_model).service_runs(
            starts, lengths, policy="sorted"
        )
        assert srt.total_ms <= fifo.total_ms * 1.05

    def test_collect_returns_per_request_and_order(self, small_drive):
        starts = np.array([10, 900, 44])
        res = small_drive.service_runs(
            starts, np.ones(3, dtype=int), policy="sorted", collect=True
        )
        assert res.per_request_ms is not None
        assert len(res.per_request_ms) == 3
        assert sorted(res.order.tolist()) == [0, 1, 2]
        assert res.total_ms == pytest.approx(float(res.per_request_ms.sum()))

    def test_breakdown_sums_to_total(self, small_drive):
        starts = np.array([5, 600, 2000, 100])
        res = small_drive.service_runs(
            starts, np.full(4, 3), policy="sorted"
        )
        assert res.seek_ms + res.rotation_ms + res.transfer_ms + res.switch_ms == pytest.approx(
            res.total_ms
        )

    def test_service_lbns_is_single_blocks(self, small_drive):
        res = small_drive.service_lbns(np.array([1, 2, 3]), policy="fifo")
        assert res.n_blocks == 3
        assert res.n_requests == 3

    def test_unknown_policy_rejected(self, small_drive):
        with pytest.raises(ValueError):
            small_drive.service_runs(
                np.array([0]), np.array([1]), policy="nope"
            )

    def test_bad_lengths_rejected(self, small_drive):
        with pytest.raises(GeometryError):
            small_drive.service_runs(np.array([0]), np.array([0]))


class TestSPTF:
    def test_sptf_not_worse_than_fifo(self, small_model):
        rng = np.random.default_rng(3)
        starts = rng.integers(0, small_model.geometry.n_lbns - 1, size=100)
        lengths = np.ones_like(starts)
        fifo = DiskDrive(small_model).service_runs(
            starts, lengths, policy="fifo"
        )
        sptf = DiskDrive(small_model).service_runs(
            starts, lengths, policy="sptf", window=100
        )
        assert sptf.total_ms <= fifo.total_ms + 1e-9

    def test_sptf_services_all_requests_once(self, small_drive):
        starts = np.arange(0, 1000, 37)
        res = small_drive.service_runs(
            starts,
            np.ones_like(starts),
            policy="sptf",
            window=8,
            collect=True,
        )
        assert sorted(res.order.tolist()) == list(range(len(starts)))
        assert res.n_requests == len(starts)

    def test_sptf_window_one_equals_fifo(self, small_model):
        starts = np.array([40, 900, 10, 2000, 77])
        lengths = np.ones_like(starts)
        fifo = DiskDrive(small_model).service_runs(
            starts, lengths, policy="fifo"
        )
        w1 = DiskDrive(small_model).service_runs(
            starts, lengths, policy="sptf", window=1
        )
        assert w1.total_ms == pytest.approx(fifo.total_ms)

    def test_sptf_picks_semi_sequential_order(self, small_model):
        """Issue adjacent blocks in reverse; SPTF should reorder to the
        semi-sequential path and service each hop in ~settle time."""
        from repro.disk import AdjacencyModel

        adj = AdjacencyModel.for_model(small_model)
        drive = DiskDrive(small_model)
        path = adj.semi_sequential_path(0, 10, 1)
        res = drive.service_runs(
            path[::-1].copy(),
            np.ones(10, dtype=int),
            policy="sptf",
            window=10,
        )
        settle = small_model.mechanics.settle_ms
        rot = small_model.mechanics.rotation_ms
        # Each hop costs about one skew of rotation; far below random access.
        assert res.total_ms / 10 < settle + 3 * rot / 90


class TestStreamingBandwidth:
    def test_streaming_matches_simulated_long_read(self, small_model):
        drive = DiskDrive(small_model)
        geom = small_model.geometry
        spt = geom.track_length(0)
        nblocks = spt * 20
        drive.service(0)  # position at track start
        tm = drive.service(1, nblocks=nblocks - 1)
        simulated = (nblocks - 1) * 512 / (tm.total_ms / 1000)
        predicted = drive.streaming_bandwidth_bytes_per_s(0)
        assert simulated == pytest.approx(predicted, rel=0.02)

    def test_outer_zone_faster_than_inner(self, atlas_drive):
        assert atlas_drive.streaming_bandwidth_bytes_per_s(
            0
        ) > atlas_drive.streaming_bandwidth_bytes_per_s(7)


class TestPaperScaleTimings:
    """Sanity-check magnitudes against the numbers the paper reports."""

    def test_semi_sequential_hop_near_settle(self, atlas_model):
        from repro.disk import AdjacencyModel

        adj = AdjacencyModel.for_model(atlas_model)
        drive = DiskDrive(atlas_model)
        drive.service(0)
        for j in (1, 2, 64, 128):
            drive.reset()
            drive.service(0)
            tm = drive.service(adj.get_adjacent(0, j))
            # paper: ~1.2-1.5 ms per cell for MultiMap's non-primary dims
            assert 1.1 < tm.total_ms < 1.6

    def test_random_access_costs_seek_plus_half_rotation(self, atlas_model):
        rng = np.random.default_rng(0)
        drive = DiskDrive(atlas_model)
        lbns = rng.integers(0, atlas_model.geometry.n_lbns, size=300)
        res = drive.service_lbns(lbns, policy="fifo")
        avg = res.total_ms / 300
        assert 6.0 < avg < 9.5  # ~avg seek + ~3 ms rotation

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_time_always_advances(self, small_model, seed):
        rng = np.random.default_rng(seed)
        drive = DiskDrive(small_model)
        lbns = rng.integers(0, small_model.geometry.n_lbns, size=20)
        t = 0.0
        for lbn in lbns:
            tm = drive.service(int(lbn))
            assert tm.end_ms >= t
            assert tm.total_ms >= 0
            t = tm.end_ms
