"""Tests for declustering strategies."""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.lvm import assign_chunks, disk_modulo, round_robin


class TestRoundRobin:
    def test_cycles(self):
        np.testing.assert_array_equal(
            round_robin(6, 3), [0, 1, 2, 0, 1, 2]
        )

    def test_single_disk(self):
        assert set(round_robin(5, 1).tolist()) == {0}

    def test_balanced(self):
        out = round_robin(100, 4)
        counts = np.bincount(out)
        assert counts.max() - counts.min() <= 1

    def test_rejects_zero_disks(self):
        with pytest.raises(AllocationError):
            round_robin(4, 0)


class TestDiskModulo:
    def test_2d_grid(self):
        # 2x2 grid on 2 disks: (0,0)->0 (1,0)->1 (0,1)->1 (1,1)->0
        out = disk_modulo((2, 2), 2)
        np.testing.assert_array_equal(out, [0, 1, 1, 0])

    def test_rows_spread_across_disks(self):
        grid = (4, 4)
        out = disk_modulo(grid, 4).reshape(4, 4)
        for row in out:
            assert sorted(row.tolist()) == [0, 1, 2, 3]
        for col in out.T:
            assert sorted(col.tolist()) == [0, 1, 2, 3]

    def test_3d_shape(self):
        out = disk_modulo((2, 3, 4), 5)
        assert out.size == 24

    def test_rejects_zero_disks(self):
        with pytest.raises(AllocationError):
            disk_modulo((2, 2), 0)


class TestAssignChunks:
    def test_round_robin_dispatch(self):
        np.testing.assert_array_equal(
            assign_chunks(4, 2, "round_robin"), [0, 1, 0, 1]
        )

    def test_disk_modulo_dispatch(self):
        out = assign_chunks(4, 2, "disk_modulo", grid_shape=(2, 2))
        assert out.size == 4

    def test_disk_modulo_needs_grid(self):
        with pytest.raises(AllocationError):
            assign_chunks(4, 2, "disk_modulo")

    def test_disk_modulo_grid_mismatch(self):
        with pytest.raises(AllocationError):
            assign_chunks(5, 2, "disk_modulo", grid_shape=(2, 2))

    def test_unknown_strategy(self):
        with pytest.raises(AllocationError):
            assign_chunks(4, 2, "nope")
