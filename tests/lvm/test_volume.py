"""Tests for the logical volume manager."""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.lvm import Extent, LogicalVolume
from repro.disk import synthetic_disk


@pytest.fixture()
def volume(small_model):
    return LogicalVolume([small_model], depth=16)


class TestExtent:
    def test_end(self):
        assert Extent(0, 10, 5).end == 15

    def test_rejects_empty(self):
        with pytest.raises(AllocationError):
            Extent(0, 10, 0)

    def test_rejects_negative_start(self):
        with pytest.raises(AllocationError):
            Extent(0, -1, 5)


class TestConstruction:
    def test_needs_a_disk(self):
        with pytest.raises(AllocationError):
            LogicalVolume([])

    def test_n_disks(self, small_model):
        vol = LogicalVolume([small_model, small_model])
        assert vol.n_disks == 2

    def test_depth_exposed(self, volume):
        assert volume.depth(0) == 16

    def test_default_depth_is_r_times_c(self, small_model):
        vol = LogicalVolume([small_model])
        expected = (
            small_model.geometry.surfaces
            * small_model.mechanics.settle_cylinders
        )
        assert vol.depth(0) == expected


class TestZoneInfo:
    def test_zone_info_fields(self, volume, small_model):
        zi = volume.zone_info(0, 0)
        zone = small_model.geometry.zone(0)
        assert zi.track_length == zone.sectors_per_track
        assert zi.tracks == small_model.geometry.zone_tracks(0)
        assert zi.first_lbn == 0
        assert zi.hop_ms > 0

    def test_zones_lists_all(self, volume, small_model):
        assert len(volume.zones(0)) == len(small_model.geometry.zones)


class TestInterfaceFunctions:
    def test_get_adjacent_passthrough(self, volume, small_model):
        from repro.disk import AdjacencyModel

        adj = AdjacencyModel.for_model(small_model, depth=16)
        assert volume.get_adjacent(0, 100, 3) == adj.get_adjacent(100, 3)

    def test_get_track_boundaries_passthrough(self, volume, small_model):
        assert volume.get_track_boundaries(0, 100) == (
            small_model.geometry.track_boundaries(100)
        )


class TestAllocation:
    def test_track_allocation_is_track_aligned(self, volume, small_model):
        ext = volume.allocate_tracks(0, 4)
        geom = small_model.geometry
        assert geom.sector_of(ext.start) == 0
        assert ext.nblocks == 4 * geom.track_length(0)

    def test_sequential_allocations_do_not_overlap(self, volume):
        a = volume.allocate_tracks(0, 3)
        b = volume.allocate_tracks(0, 5)
        assert b.start >= a.end

    def test_allocation_skips_zone_remainder(self, volume, small_model):
        geom = small_model.geometry
        z0_tracks = geom.zone_tracks(0)
        volume.allocate_tracks(0, z0_tracks - 1)
        ext = volume.allocate_tracks(0, 4)  # cannot fit in zone 0 remainder
        assert geom.zone_index_of_lbn(ext.start) == 1

    def test_zone_pinned_allocation(self, volume, small_model):
        ext = volume.allocate_tracks(0, 2, zone_index=1)
        assert small_model.geometry.zone_index_of_lbn(ext.start) == 1

    def test_zone_pinned_overflow_raises(self, volume, small_model):
        tracks = small_model.geometry.zone_tracks(1)
        with pytest.raises(AllocationError):
            volume.allocate_tracks(0, tracks + 1, zone_index=1)

    def test_oversized_allocation_raises(self, volume, small_model):
        with pytest.raises(AllocationError):
            volume.allocate_tracks(
                0, small_model.geometry.n_tracks + 1
            )

    def test_exhaustion_raises(self, small_model):
        vol = LogicalVolume([small_model])
        geom = small_model.geometry
        for zi in range(len(geom.zones)):
            vol.allocate_tracks(0, geom.zone_tracks(zi), zone_index=zi)
        with pytest.raises(AllocationError):
            vol.allocate_tracks(0, 1)

    def test_block_allocation(self, volume):
        ext = volume.allocate_blocks(0, 1000)
        assert ext.nblocks == 1000

    def test_block_allocation_advances_cursor(self, volume):
        a = volume.allocate_blocks(0, 1000)
        b = volume.allocate_blocks(0, 1000)
        assert b.start >= a.end

    def test_free_tracks_in_zone(self, volume, small_model):
        total = small_model.geometry.zone_tracks(0)
        assert volume.free_tracks_in_zone(0, 0) == total
        volume.allocate_tracks(0, 10)
        assert volume.free_tracks_in_zone(0, 0) == total - 10

    def test_reset_allocation(self, volume):
        volume.allocate_tracks(0, 10)
        volume.reset_allocation()
        ext = volume.allocate_tracks(0, 1)
        assert ext.start == 0

    def test_rejects_nonpositive(self, volume):
        with pytest.raises(AllocationError):
            volume.allocate_tracks(0, 0)
        with pytest.raises(AllocationError):
            volume.allocate_blocks(0, 0)

    def test_per_disk_cursors_independent(self, small_model):
        vol = LogicalVolume([small_model, small_model])
        vol.allocate_tracks(0, 10)
        ext = vol.allocate_tracks(1, 1)
        assert ext.start == 0
