"""Determinism regressions for the traffic engine.

Two guarantees are pinned:

* same seed ⇒ bit-identical :class:`TrafficReport` JSON across runs
  (no wall-clock, no hash-order anywhere in the engine);
* per-client random streams depend only on the client's own submission
  order, so re-interleaving service at the drive (different slice
  granularity, different head mode) never changes *what* is read — only
  *when* — and per-drive served-block totals are invariant.
"""

import pytest

from repro.traffic import QueryMix


def beams_run(make_dataset, *, seed=42, slice_runs=16, head="random",
              n_clients=3, queries=5, layout="multimap"):
    return (
        make_dataset(layout=layout, seed=seed)
        .traffic()
        .clients(n_clients, mix=QueryMix.beams(1, 2), queries=queries)
        .slice_runs(slice_runs)
        .head(head)
        .run()
    )


class TestBitIdenticalReplay:
    @pytest.mark.parametrize("layout", ["multimap", "zorder"])
    def test_same_seed_same_json(self, make_dataset, layout):
        a = beams_run(make_dataset, layout=layout)
        b = beams_run(make_dataset, layout=layout)
        assert a.to_json() == b.to_json()

    def test_same_seed_same_json_open_loop(self, make_dataset):
        def go():
            return (
                make_dataset(seed=11)
                .traffic()
                .poisson(2, rate_qps=80, queries=6)
                .bursty(1, burst_rate_per_s=10, queries=6)
                .run()
                .to_json()
            )

        assert go() == go()

    def test_different_seed_differs(self, make_dataset):
        a = beams_run(make_dataset, seed=1)
        b = beams_run(make_dataset, seed=2)
        assert a.to_json() != b.to_json()


class TestInterleavingInvariance:
    @pytest.mark.parametrize("variant", [
        dict(slice_runs=4),
        dict(slice_runs=None),
        dict(slice_runs=4, head="carry"),
    ])
    def test_served_block_totals_closed_loop(self, make_dataset,
                                             variant):
        base = beams_run(make_dataset, slice_runs=16,
                         head=variant.get("head", "random"))
        other = beams_run(make_dataset, **variant)
        assert (
            [d.served_blocks for d in base.drives]
            == [d.served_blocks for d in other.drives]
        )
        # ... and per-client totals, not just the drive sum
        assert {
            n: s["served_blocks"] for n, s in base.per_client().items()
        } == {
            n: s["served_blocks"] for n, s in other.per_client().items()
        }

    @pytest.mark.parametrize("variant", [
        dict(slice_runs=4),
        dict(slice_runs=None),
        dict(slice_runs=4, head="carry"),
    ])
    def test_served_block_totals_open_loop(self, make_dataset, variant):
        def go(**cfg):
            run = (
                make_dataset(seed=13)
                .traffic()
                .poisson(3, rate_qps=150, queries=8,
                         mix=QueryMix.beams(1, 2))
            )
            run = run.slice_runs(cfg.get("slice_runs", 16))
            run = run.head(cfg.get("head", "random"))
            return run.run()

        # interleaving = slice granularity; the head model itself must
        # stay fixed because per-query head draws are part of the stream
        base = go(head=variant.get("head", "random"))
        other = go(**variant)
        assert (
            [d.served_blocks for d in base.drives]
            == [d.served_blocks for d in other.drives]
        )
        # identical queries were drawn: same labels per client in order
        for name in base.client_names():
            assert (
                [t.label for t in base.for_client(name)]
                == [t.label for t in other.for_client(name)]
            )

    def test_interleaving_changes_timing_not_blocks(self, make_dataset):
        """Sanity: the variants above are not accidentally identical."""
        a = beams_run(make_dataset, slice_runs=4)
        b = beams_run(make_dataset, slice_runs=None)
        assert a.makespan_ms != b.makespan_ms or (
            [t.completion_ms for t in a.traces]
            != [t.completion_ms for t in b.traces]
        )
