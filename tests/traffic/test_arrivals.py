"""Arrival-process unit tests: seeding, shapes, and validation."""

import itertools

import numpy as np
import pytest

from repro.errors import QueryError
from repro.traffic import BurstyArrivals, ClosedLoop, PoissonArrivals


def take(it, n):
    return list(itertools.islice(it, n))


class TestClosedLoop:
    def test_defaults(self):
        a = ClosedLoop()
        assert a.closed
        assert a.first_arrival() == 0.0
        assert a.next_after_completion(12.5) == 12.5

    def test_think_time(self):
        a = ClosedLoop(think_ms=3.0, initial_delay_ms=1.5)
        assert a.first_arrival() == 1.5
        assert a.next_after_completion(10.0) == 13.0

    def test_rejects_negative(self):
        with pytest.raises(QueryError):
            ClosedLoop(think_ms=-1.0)
        with pytest.raises(QueryError):
            ClosedLoop(initial_delay_ms=-0.1)

    def test_describe(self):
        d = ClosedLoop(think_ms=2.0).describe()
        assert d["model"] == "closed"
        assert d["think_ms"] == 2.0


class TestPoisson:
    def test_monotonic_increasing(self):
        times = take(
            PoissonArrivals(rate_qps=100).arrivals(
                np.random.default_rng(1)
            ),
            200,
        )
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_seeded_determinism(self):
        a = take(PoissonArrivals(50).arrivals(np.random.default_rng(7)),
                 50)
        b = take(PoissonArrivals(50).arrivals(np.random.default_rng(7)),
                 50)
        assert a == b

    def test_mean_rate(self):
        # 2000 draws at 100 q/s -> mean interarrival ~10 ms
        times = take(
            PoissonArrivals(rate_qps=100).arrivals(
                np.random.default_rng(3)
            ),
            2000,
        )
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(10.0, rel=0.1)

    def test_start_offset(self):
        t0 = take(
            PoissonArrivals(100, start_ms=500.0).arrivals(
                np.random.default_rng(0)
            ),
            1,
        )[0]
        assert t0 > 500.0

    def test_rejects_bad_rate(self):
        with pytest.raises(QueryError):
            PoissonArrivals(rate_qps=0)


class TestBursty:
    def test_non_decreasing_with_bursts(self):
        times = take(
            BurstyArrivals(
                burst_rate_per_s=20, mean_burst=5, intra_ms=0.25
            ).arrivals(np.random.default_rng(5)),
            500,
        )
        gaps = np.diff(times)
        assert (gaps >= 0).all()
        # batch-Poisson signature: many tiny intra-burst gaps plus
        # larger exponential inter-burst gaps
        assert np.isclose(gaps, 0.25).sum() > 50
        assert (gaps > 5.0).sum() > 10

    def test_seeded_determinism(self):
        spec = BurstyArrivals(burst_rate_per_s=10)
        a = take(spec.arrivals(np.random.default_rng(2)), 100)
        b = take(spec.arrivals(np.random.default_rng(2)), 100)
        assert a == b

    def test_validation(self):
        with pytest.raises(QueryError):
            BurstyArrivals(burst_rate_per_s=0)
        with pytest.raises(QueryError):
            BurstyArrivals(burst_rate_per_s=1, mean_burst=0.5)
        with pytest.raises(QueryError):
            BurstyArrivals(burst_rate_per_s=1, intra_ms=-1)

    def test_describe(self):
        d = BurstyArrivals(burst_rate_per_s=5).describe()
        assert d["model"] == "bursty"
        assert d["burst_rate_per_s"] == 5.0
