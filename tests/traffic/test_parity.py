"""Parity: a lone zero-think closed-loop traffic client reproduces the
one-shot :class:`StorageManager` timings bit-for-bit.

This is the guard on the executor refactor (prepare/execute split and
the engine's pre-drawn head positions): the traffic path must consume
the dataset's seed stream in exactly the order ``QueryBatch.run`` does
(query draw, head draw, query draw, ...) and service each prepared plan
identically.  Every field is compared with ``==`` — no tolerances.
"""

import pytest

from repro.api import Dataset
from repro.traffic import QueryMix

FIELDS = ("total_ms", "seek_ms", "rotation_ms", "transfer_ms",
          "switch_ms", "n_blocks", "n_runs", "n_cells")

TRACE_FIELDS = {"total_ms": "service_ms"}  # renamed on QueryTrace


def assert_bit_identical(report, traffic_report):
    assert len(report.records) == len(traffic_report.traces)
    for rec, tr in zip(report.records, traffic_report.traces):
        for f in FIELDS:
            want = getattr(rec.result, f)
            got = getattr(tr, TRACE_FIELDS.get(f, f))
            assert got == want, (f, got, want)


@pytest.mark.parametrize("layout", ["multimap", "naive", "zorder",
                                    "hilbert"])
class TestBeamParity:
    def test_random_beams(self, small_model, layout):
        shape = (24, 12, 12)
        batch_ds = Dataset.create(shape, layout=layout,
                                  drive=small_model, seed=7)
        report = batch_ds.random_beams(axis=1, n=8).run()

        traffic_ds = Dataset.create(shape, layout=layout,
                                    drive=small_model, seed=7)
        traffic_report = (
            traffic_ds.traffic()
            .clients(1, mix=QueryMix.beams(1), queries=8)
            .slice_runs(None)
            .run()
        )
        assert_bit_identical(report, traffic_report)


class TestRangeParity:
    def test_random_ranges(self, small_model):
        shape = (24, 12, 12)
        batch_ds = Dataset.create(shape, layout="multimap",
                                  drive=small_model, seed=21)
        batch = batch_ds.query()
        for _ in range(6):
            batch.range_selectivity(5.0)
        report = batch.run()

        traffic_ds = Dataset.create(shape, layout="multimap",
                                    drive=small_model, seed=21)
        traffic_report = (
            traffic_ds.traffic()
            .clients(1, mix=QueryMix.ranges(5.0), queries=6)
            .slice_runs(None)
            .run()
        )
        assert_bit_identical(report, traffic_report)


class TestExplicitRngParity:
    def test_shared_generator(self, small_model):
        """run(rng=...) mirrors QueryBatch.run(rng=...) for one client."""
        import numpy as np

        shape = (24, 12, 12)
        ds1 = Dataset.create(shape, layout="multimap", drive=small_model)
        report = ds1.random_beams(axis=2, n=5).run(
            rng=np.random.default_rng(99)
        )
        ds2 = Dataset.create(shape, layout="multimap", drive=small_model)
        traffic_report = (
            ds2.traffic()
            .clients(1, mix=QueryMix.beams(2), queries=5)
            .slice_runs(None)
            .run(rng=np.random.default_rng(99))
        )
        assert_bit_identical(report, traffic_report)


class TestPreparedPathParity:
    """The refactored execute_plan == prepare + execute_prepared."""

    @pytest.mark.parametrize("layout", ["multimap", "naive"])
    def test_execute_prepared_matches(self, small_model, layout):
        import numpy as np

        from repro.query.workload import random_beam, random_range_cube

        shape = (24, 12, 12)
        ds1 = Dataset.create(shape, layout=layout, drive=small_model)
        ds2 = Dataset.create(shape, layout=layout, drive=small_model)
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        for i in range(4):
            q = random_beam(shape, 1, rng1)
            r1 = ds1.storage.run_query(ds1.mapper, q, rng=rng1)
            q2 = random_beam(shape, 1, rng2)
            prepared = ds2.storage.prepare(ds2.mapper, q2)
            r2 = ds2.storage.execute_prepared(prepared, rng=rng2)
            assert r1 == r2
        for i in range(3):
            q = random_range_cube(shape, 10.0, rng1)
            r1 = ds1.storage.run_query(ds1.mapper, q, rng=rng1)
            q2 = random_range_cube(shape, 10.0, rng2)
            prepared = ds2.storage.prepare(ds2.mapper, q2)
            r2 = ds2.storage.execute_prepared(prepared, rng=rng2)
            assert r1 == r2

    def test_single_slice_equals_whole_plan(self, small_model):
        """Servicing a prepared plan as back-to-back fifo/sorted slices
        is timing-identical to one batch (the resumable-position
        property the engine relies on)."""
        import numpy as np

        from repro.query.scheduler import slice_plan
        from repro.query.workload import random_range_cube

        shape = (24, 12, 12)
        ds1 = Dataset.create(shape, layout="multimap", drive=small_model)
        ds2 = Dataset.create(shape, layout="multimap", drive=small_model)
        rng = np.random.default_rng(17)
        q = random_range_cube(shape, 20.0, rng)

        prep1 = ds1.storage.prepare(ds1.mapper, q)
        prep2 = ds2.storage.prepare(ds2.mapper, q)
        if prep1.policy == "sptf":
            pytest.skip("sptf schedules across the whole batch")

        drive1 = ds1.volume.drive(0)
        drive1.reset(100, 1.0)
        whole = drive1.service_runs(
            prep1.plan.starts, prep1.plan.lengths, policy=prep1.policy
        )

        drive2 = ds2.volume.drive(0)
        drive2.reset(100, 1.0)
        total = 0.0
        for sl in slice_plan(prep2.plan, 3):
            total += drive2.service_runs(
                sl.starts, sl.lengths, policy=prep2.policy
            ).total_ms
        assert total == pytest.approx(whole.total_ms, abs=1e-9)
        assert drive2.current_track == drive1.current_track
