"""Engine behaviour: queueing, slicing, head modes, horizons."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query.workload import BeamQuery, RangeQuery
from repro.traffic import (
    ClosedLoop,
    PoissonArrivals,
    QueryMix,
    Replay,
    TrafficClient,
    TrafficConfig,
    TrafficSim,
)


class TestConfig:
    def test_rejects_bad_head(self):
        with pytest.raises(QueryError):
            TrafficConfig(head="sideways")

    def test_rejects_bad_slice_runs(self):
        with pytest.raises(QueryError):
            TrafficConfig(slice_runs=0)

    def test_none_slice_runs_ok(self):
        assert TrafficConfig(slice_runs=None).slice_runs is None


class TestSingleClient:
    def test_trace_fields(self, make_dataset):
        ds = make_dataset()
        rep = (
            ds.traffic()
            .clients(1, mix=QueryMix.beams(1), queries=4)
            .run()
        )
        assert len(rep) == 4
        for tr in rep:
            assert tr.client == "c0"
            assert tr.label == "beam[axis=1]"
            assert tr.completion_ms >= tr.start_ms >= tr.arrival_ms
            assert tr.service_ms > 0
            assert tr.n_blocks == tr.n_cells  # one block per cell
            assert tr.latency_ms == pytest.approx(
                tr.service_ms + tr.queue_ms
            )

    def test_closed_loop_no_queueing(self, make_dataset):
        """A lone zero-think client never waits behind anyone."""
        rep = (
            make_dataset().traffic()
            .clients(1, queries=5)
            .slice_runs(None)
            .run()
        )
        for tr in rep:
            assert tr.queue_ms == pytest.approx(0.0, abs=1e-9)

    def test_think_time_spaces_arrivals(self, make_dataset):
        rep = (
            make_dataset().traffic()
            .closed(1, think_ms=100.0, queries=3)
            .run()
        )
        arr = [tr.arrival_ms for tr in rep.traces]
        comp = [tr.completion_ms for tr in rep.traces]
        assert arr[1] == pytest.approx(comp[0] + 100.0)
        assert arr[2] == pytest.approx(comp[1] + 100.0)


class TestContention:
    def test_queueing_appears_under_load(self, make_dataset):
        rep = (
            make_dataset().traffic()
            .clients(4, mix=QueryMix.beams(1), queries=4)
            .run()
        )
        agg = rep.aggregate()
        assert agg["mean_queue_ms"] > 0
        assert rep.drives[0].utilization(rep.makespan_ms) <= 1.0 + 1e-9

    def test_slices_interleave_between_clients(self, make_dataset):
        """With tiny slices, a range query is split and other clients'
        queries complete inside its submission->completion window."""
        ds = make_dataset()
        rep = (
            ds.traffic()
            .clients(1, mix=QueryMix.ranges(20.0), queries=1,
                     name="big")
            .clients(3, mix=QueryMix.beams(1), queries=3)
            .slice_runs(4)
            .run()
        )
        big = rep.for_client("big")[0]
        assert big.n_slices > 1
        inside = [
            tr for tr in rep.traces
            if tr.client != "big"
            and big.start_ms < tr.completion_ms < big.completion_ms
        ]
        assert inside, "no other query completed inside the big query"

    def test_total_blocks_conserved(self, make_dataset):
        rep = (
            make_dataset().traffic()
            .clients(3, mix=QueryMix.beams(1), queries=5)
            .run()
        )
        from_traces = sum(tr.n_blocks for tr in rep.traces)
        from_drives = sum(d.served_blocks for d in rep.drives)
        assert from_traces == from_drives
        assert from_drives == 3 * 5 * 12  # beams along axis 1, dim=12

    def test_busy_ms_matches_service(self, make_dataset):
        rep = (
            make_dataset().traffic()
            .clients(2, queries=4)
            .run()
        )
        total_service = sum(tr.service_ms for tr in rep.traces)
        total_busy = sum(d.busy_ms for d in rep.drives)
        assert total_busy == pytest.approx(total_service)


class TestHeadModes:
    def test_carry_mode_runs(self, make_dataset):
        rep = (
            make_dataset().traffic()
            .clients(2, queries=4)
            .head("carry")
            .run()
        )
        assert len(rep) == 8

    def test_carry_differs_from_random(self, make_dataset):
        r1 = make_dataset(seed=3).traffic().clients(1, queries=5).run()
        r2 = (
            make_dataset(seed=3).traffic().clients(1, queries=5)
            .head("carry").run()
        )
        lat1 = [tr.latency_ms for tr in r1.traces]
        lat2 = [tr.latency_ms for tr in r2.traces]
        assert lat1 != lat2


class TestOpenLoop:
    def test_poisson_queue_buildup(self, make_dataset):
        """Arrivals faster than service -> waiting grows."""
        rep = (
            make_dataset().traffic()
            .poisson(1, rate_qps=200, queries=10,
                     mix=QueryMix.beams(1))
            .run()
        )
        assert len(rep) == 10
        # open loop: later queries wait behind earlier ones
        assert rep.aggregate()["mean_queue_ms"] > 0

    def test_horizon_cuts_submissions(self, make_dataset):
        ds = make_dataset()
        full = (
            ds.traffic()
            .poisson(1, rate_qps=100, queries=50)
            .run()
        )
        cut = (
            make_dataset().traffic()
            .poisson(1, rate_qps=100, queries=50)
            .horizon(full.makespan_ms / 4)
            .run()
        )
        assert 0 < len(cut) < len(full)


class TestReplayMix:
    def test_cycles_fixed_queries(self, make_dataset):
        ds = make_dataset()
        queries = [
            BeamQuery(axis=1, fixed=(0, 0, 3)),
            RangeQuery(lo=(0, 0, 0), hi=(4, 4, 4)),
        ]
        rep = (
            ds.traffic()
            .clients(1, mix=Replay(queries), queries=4)
            .run()
        )
        labels = [tr.label for tr in rep.traces]
        assert labels == [
            "beam[axis=1]", "range(4, 4, 4)",
            "beam[axis=1]", "range(4, 4, 4)",
        ]


class TestEngineValidation:
    def test_needs_clients(self):
        with pytest.raises(QueryError):
            TrafficSim([])

    def test_unique_names(self, make_dataset):
        ds = make_dataset()
        mk = lambda name: TrafficClient(
            name=name, storage=ds.storage, mapper=ds.mapper,
            mix=QueryMix.beams(1), rng=np.random.default_rng(0),
        )
        with pytest.raises(QueryError):
            TrafficSim([mk("a"), mk("a")])

    def test_run_requires_client(self, make_dataset):
        with pytest.raises(QueryError):
            make_dataset().traffic().run()


class TestReportShape:
    def test_render_and_str(self, make_dataset):
        rep = make_dataset().traffic().clients(2, queries=3).run()
        table = rep.render_table()
        assert "TOTAL" in table and "disk0" in table
        assert "q/s" in str(rep)

    def test_to_dict_layout(self, make_dataset):
        d = make_dataset().traffic().clients(2, queries=3).run().to_dict()
        assert set(d) == {
            "meta", "makespan_ms", "aggregate", "clients", "drives",
            "traces",
        }
        assert d["meta"]["config"]["head"] == "random"
        assert [c["name"] for c in d["meta"]["clients"]] == ["c0", "c1"]
        agg = d["aggregate"]
        assert agg["n_queries"] == 6
        for key in ("p50", "p90", "p95", "p99"):
            assert key in agg["latency_ms"]

    def test_traces_off(self, make_dataset):
        rep = (
            make_dataset().traffic().clients(1, queries=3)
            .traces(False).run()
        )
        assert len(rep) == 0
        assert rep.drives[0].served_blocks > 0

    def test_zero_trace_report_still_renders(self, make_dataset):
        rep = (
            make_dataset().traffic().clients(1, queries=3)
            .traces(False).run()
        )
        table = rep.render_table()
        assert "TOTAL" in table and "-" in table
        str(rep)
        rep.to_json()
