"""Setup shim.

The execution environment has no ``wheel`` package, which the PEP-517
editable-install path requires.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on machines that do have wheel) work everywhere.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
